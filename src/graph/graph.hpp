#pragma once
// Undirected (optionally weighted) graph in CSR form.
//
// Vertices are dense ids [0, n). Each undirected edge {x, y} is stored twice
// (once per endpoint) and identified globally by its *edge index*
// `edge_index(x, y) = min*n + max`, the encoding the incidence vectors of
// Section 2.3 are defined over (a point in [0, n^2) ⊃ [0, C(n,2))).

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"
#include "util/expected.hpp"

namespace kmm {

class ThreadPool;  // util/thread_pool.hpp — only the parallel ctor needs it

using Vertex = std::uint32_t;
using Weight = std::uint64_t;
using EdgeIndex = std::uint64_t;

/// Directed half-edge as seen from one endpoint.
struct HalfEdge {
  Vertex to;
  Weight weight;
};

struct WeightedEdge {
  Vertex u, v;
  Weight w;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

/// FNV-1a fingerprint of an edge list's (u, v, w) stream — the single
/// identity check shared by the generator golden pins (tests) and the
/// input-pipeline determinism cross-checks (benches), so the two can never
/// silently validate different things.
[[nodiscard]] inline std::uint64_t edge_list_fingerprint(
    const std::vector<WeightedEdge>& edges) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&](std::uint64_t x) {
    h ^= x;
    h *= 0x100000001b3ULL;
  };
  for (const auto& e : edges) {
    mix(e.u);
    mix(e.v);
    mix(e.w);
  }
  return h;
}

/// Canonical global index of the undirected edge {x, y} in [0, n^2).
[[nodiscard]] constexpr EdgeIndex edge_index(Vertex x, Vertex y, std::uint64_t n) noexcept {
  const Vertex lo = x < y ? x : y;
  const Vertex hi = x < y ? y : x;
  return static_cast<EdgeIndex>(lo) * n + hi;
}

/// Inverse of edge_index.
[[nodiscard]] constexpr std::pair<Vertex, Vertex> edge_endpoints(EdgeIndex e,
                                                                 std::uint64_t n) noexcept {
  return {static_cast<Vertex>(e / n), static_cast<Vertex>(e % n)};
}

class Graph {
 public:
  Graph() = default;

  /// Builds CSR from an undirected edge list; parallel edges and self-loops
  /// are rejected (checked). Vertices referenced must be < n.
  Graph(std::size_t n, std::vector<WeightedEdge> edges);

  /// Validating factory for edge lists of *external* origin (files, flags,
  /// wire input): pre-checks every rule the ctor would abort on — endpoint
  /// range, self-loops, parallel edges — and returns the diagnostic as data
  /// instead. On success the graph is identical to `Graph(n, edges, pool)`.
  [[nodiscard]] static Expected<Graph, BuildError> make(std::size_t n,
                                                        std::vector<WeightedEdge> edges,
                                                        ThreadPool* pool = nullptr);

  /// Same, with the heavy passes (canonicalize/validate, sort, degree
  /// count, adjacency fill) parallelized on `pool` — the input-pipeline
  /// ctor for the n >= 10^6 tier. The result is IDENTICAL to the serial
  /// ctor for any thread count: the canonical (u, v) edge sort has no equal
  /// keys (parallel edges are rejected), and each adjacency list is sorted
  /// ascending by neighbor id, which is exactly the order the serial fill
  /// produces. Pre-sorted inputs (the chunked generators emit edges in
  /// canonical order) skip the sort pass entirely. pool == nullptr or small
  /// inputs fall back to the serial path.
  Graph(std::size_t n, std::vector<WeightedEdge> edges, ThreadPool* pool);

  [[nodiscard]] std::size_t num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  [[nodiscard]] std::span<const HalfEdge> neighbors(Vertex v) const {
    KMM_CHECK(v < n_);
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  [[nodiscard]] std::size_t degree(Vertex v) const {
    KMM_CHECK(v < n_);
    return offsets_[v + 1] - offsets_[v];
  }

  /// The unique undirected edges, each with u < v, sorted by (u, v).
  [[nodiscard]] const std::vector<WeightedEdge>& edges() const noexcept { return edges_; }

  [[nodiscard]] bool has_edge(Vertex x, Vertex y) const;
  [[nodiscard]] Weight max_weight() const noexcept { return max_weight_; }

  /// True if all edge weights are pairwise distinct (MST uniqueness).
  [[nodiscard]] bool has_unique_weights() const;

  /// A copy of this graph with the given undirected edges removed.
  [[nodiscard]] Graph without_edges(const std::vector<std::pair<Vertex, Vertex>>& removed) const;

  /// A copy with only the edges for which keep(u, v, w) returns true.
  template <typename Pred>
  [[nodiscard]] Graph filtered(Pred keep) const {
    std::vector<WeightedEdge> kept;
    kept.reserve(edges_.size());
    for (const auto& e : edges_) {
      if (keep(e.u, e.v, e.w)) kept.push_back(e);
    }
    return Graph(n_, std::move(kept));
  }

 private:
  void build_serial(std::vector<WeightedEdge> edges);
  void build_parallel(std::vector<WeightedEdge> edges, ThreadPool& pool);

  std::size_t n_ = 0;
  std::vector<std::size_t> offsets_;  // n_+1 entries
  std::vector<HalfEdge> adj_;
  std::vector<WeightedEdge> edges_;  // unique edges, u < v, sorted
  Weight max_weight_ = 0;
};

}  // namespace kmm
