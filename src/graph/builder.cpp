#include "graph/builder.hpp"

#include <algorithm>
#include <utility>

namespace kmm {

bool GraphBuilder::has_edge(Vertex u, Vertex v) const {
  if (u == v || u >= n_ || v >= n_) return false;
  return seen_.contains(edge_index(u, v, n_));
}

bool GraphBuilder::add_edge(Vertex u, Vertex v, Weight w) {
  if (u == v || u >= n_ || v >= n_) return false;
  if (!seen_.insert(edge_index(u, v, n_)).second) return false;
  if (u > v) std::swap(u, v);
  edges_.push_back(WeightedEdge{u, v, w});
  return true;
}

Graph GraphBuilder::build() {
  seen_.clear();
  return Graph(n_, std::exchange(edges_, {}));
}

Graph GraphBuilder::build(ThreadPool* pool) {
  seen_.clear();
  return Graph(n_, std::exchange(edges_, {}), pool);
}

Graph with_unique_weights(const Graph& g) {
  auto edges = g.edges();
  const auto m = static_cast<Weight>(edges.size());
  // Stable rank within equal weights follows the canonical (u, v) order that
  // Graph maintains, so the transformation is deterministic.
  for (std::size_t i = 0; i < edges.size(); ++i) {
    edges[i].w = edges[i].w * (m + 1) + static_cast<Weight>(i);
  }
  return Graph(g.num_vertices(), std::move(edges));
}

Graph with_random_weights(const Graph& g, Rng& rng, Weight limit) {
  auto edges = g.edges();
  for (auto& e : edges) e.w = 1 + rng.next_below(limit);
  return Graph(g.num_vertices(), std::move(edges));
}

}  // namespace kmm
