#pragma once
// Synthetic graph families used by tests, benches and examples.
//
// All generators are deterministic in (parameters, rng state). Weighted
// variants assign uniformly random weights; call with_unique_weights() when
// an algorithm needs a unique MST.

#include <vector>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace kmm::gen {

/// Erdős–Rényi G(n, m): exactly m distinct uniform edges.
[[nodiscard]] Graph gnm(std::size_t n, std::size_t m, Rng& rng);

/// Erdős–Rényi G(n, p) via geometric skipping.
[[nodiscard]] Graph gnp(std::size_t n, double p, Rng& rng);

/// Uniform random connected graph: random spanning tree + (m - n + 1) extras.
[[nodiscard]] Graph connected_gnm(std::size_t n, std::size_t m, Rng& rng);

/// Path 0-1-2-...-(n-1).
[[nodiscard]] Graph path(std::size_t n);

/// Cycle on n >= 3 vertices.
[[nodiscard]] Graph cycle(std::size_t n);

/// Star: vertex 0 joined to all others.
[[nodiscard]] Graph star(std::size_t n);

/// Complete graph K_n.
[[nodiscard]] Graph complete(std::size_t n);

/// rows x cols grid (4-neighborhood).
[[nodiscard]] Graph grid(std::size_t rows, std::size_t cols);

/// Complete binary tree on n vertices (heap indexing).
[[nodiscard]] Graph binary_tree(std::size_t n);

/// Uniform random spanning tree on n vertices (random attachment order).
[[nodiscard]] Graph random_tree(std::size_t n, Rng& rng);

/// Disjoint union of `parts` graphs with vertex ids offset; the result has
/// sum(n_i) vertices and one connected component per connected part.
[[nodiscard]] Graph disjoint_union(const std::vector<Graph>& parts);

/// `c` equally-sized random connected components, each a connected G(n/c, m/c).
[[nodiscard]] Graph multi_component(std::size_t n, std::size_t m, std::size_t c, Rng& rng);

/// Planted-communities graph ("social network"): `c` dense G(n/c, p_in)
/// blocks plus `bridges` random inter-block edges (0 bridges keeps the
/// blocks as separate components).
[[nodiscard]] Graph planted_communities(std::size_t n, std::size_t c, double p_in,
                                        std::size_t bridges, Rng& rng);

/// Connected bipartite graph: random tree on the bipartition classes plus
/// extra class-crossing edges. Always 2-colorable.
[[nodiscard]] Graph bipartite(std::size_t n_left, std::size_t n_right, std::size_t m, Rng& rng);

/// Bipartite graph plus one odd cycle — non-bipartite by construction.
[[nodiscard]] Graph odd_cycle_spoiler(std::size_t n_left, std::size_t n_right, std::size_t m,
                                      Rng& rng);

/// Two cliques of size n/2 joined by exactly `lambda` edges: the minimum cut
/// is `lambda` (for lambda < n/2 - 1). Used by the min-cut experiments.
[[nodiscard]] Graph dumbbell(std::size_t n, std::size_t lambda, Rng& rng);

/// `cliques` cliques of size `clique_size` chained by single edges — high
/// diameter, high-degree hubs. Flooding's worst case in the k-machine model.
[[nodiscard]] Graph clique_chain(std::size_t cliques, std::size_t clique_size);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices chosen proportionally to degree. Connected,
/// heavy-tailed degree distribution (web/social-graph shape).
[[nodiscard]] Graph preferential_attachment(std::size_t n, std::size_t attach, Rng& rng);

/// R-MAT (Chakrabarti–Zhan–Faloutsos): recursive quadrant descent over the
/// adjacency matrix with probabilities (a, b, c, 1-a-b-c). Skewed degrees
/// and clustered structure — the standard "hard" synthetic input for
/// distributed graph processing. Self-loops and duplicate edges are
/// dropped, so the result has at most `m` edges (attempts are capped).
[[nodiscard]] Graph rmat(std::size_t n, std::size_t m, Rng& rng, double a = 0.57,
                         double b = 0.19, double c = 0.19);

// ---------------------------------------------------------------------------
// Chunked parallel generators (the large-graph input pipeline, KaGen-style).
//
// The edge stream is split into fixed chunks, and chunk c draws exclusively
// from its own counter-derived PRNG stream Rng(split3(seed, kind, c)) —
// so the generated graph is a pure function of (parameters, seed,
// edges_per_chunk) and NEVER of the thread count: chunks are assembled in
// fixed chunk order whatever schedule executed them. gnm_par additionally
// stratifies the linear edge-index space [0, C(n,2)) so chunks own disjoint
// ranges: exactly m distinct edges with no cross-chunk coordination (a
// stratified G(n,m): uniform within each stratum, per-stratum counts split
// proportionally rather than hypergeometrically — indistinguishable for the
// sparse benchmark regime and deterministic by construction). rmat_par
// parallelizes the quadrant descents (the expensive half) and dedups
// candidates in chunk order, so it keeps the serial generator's contract:
// at most m edges.

struct ParGenConfig {
  std::uint64_t seed = 1;
  /// Worker threads; 0 = hardware concurrency. Does NOT affect the result.
  unsigned threads = 1;
  /// Stream granularity. Part of the generated graph's identity (changing
  /// it changes which stream an edge is drawn from) — leave at the default
  /// for reproducible benchmarks.
  std::size_t edges_per_chunk = 1 << 16;
  /// 0 = unweighted (w = 1); else w = 1 + prf(seed, edge_index) % limit —
  /// weights are attached per edge id, so they are chunk- and
  /// thread-invariant too.
  Weight weight_limit = 0;
};

/// Stratified-uniform G(n, m): exactly m distinct edges, deterministic in
/// (n, m, cfg.seed, cfg.edges_per_chunk) for every thread count. Pass a
/// pool to reuse the caller's workers (cfg.threads is then ignored);
/// otherwise one is spun up for the call.
[[nodiscard]] Graph gnm_par(std::size_t n, std::size_t m, const ParGenConfig& cfg,
                            ThreadPool* pool = nullptr);

/// Chunked parallel R-MAT; same skew/clustering shape as gen::rmat, at most
/// m edges, deterministic for every thread count. Same pool contract as
/// gnm_par.
[[nodiscard]] Graph rmat_par(std::size_t n, std::size_t m, const ParGenConfig& cfg,
                             double a = 0.57, double b = 0.19, double c = 0.19,
                             ThreadPool* pool = nullptr);

}  // namespace kmm::gen
