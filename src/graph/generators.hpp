#pragma once
// Synthetic graph families used by tests, benches and examples.
//
// All generators are deterministic in (parameters, rng state). Weighted
// variants assign uniformly random weights; call with_unique_weights() when
// an algorithm needs a unique MST.

#include <functional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace kmm::gen {

/// Erdős–Rényi G(n, m): exactly m distinct uniform edges.
[[nodiscard]] Graph gnm(std::size_t n, std::size_t m, Rng& rng);

/// Erdős–Rényi G(n, p) via geometric skipping.
[[nodiscard]] Graph gnp(std::size_t n, double p, Rng& rng);

/// Uniform random connected graph: random spanning tree + (m - n + 1) extras.
[[nodiscard]] Graph connected_gnm(std::size_t n, std::size_t m, Rng& rng);

/// Path 0-1-2-...-(n-1).
[[nodiscard]] Graph path(std::size_t n);

/// Cycle on n >= 3 vertices.
[[nodiscard]] Graph cycle(std::size_t n);

/// Star: vertex 0 joined to all others.
[[nodiscard]] Graph star(std::size_t n);

/// Complete graph K_n.
[[nodiscard]] Graph complete(std::size_t n);

/// rows x cols grid (4-neighborhood).
[[nodiscard]] Graph grid(std::size_t rows, std::size_t cols);

/// Complete binary tree on n vertices (heap indexing).
[[nodiscard]] Graph binary_tree(std::size_t n);

/// Uniform random spanning tree on n vertices (random attachment order).
[[nodiscard]] Graph random_tree(std::size_t n, Rng& rng);

/// Disjoint union of `parts` graphs with vertex ids offset; the result has
/// sum(n_i) vertices and one connected component per connected part.
[[nodiscard]] Graph disjoint_union(const std::vector<Graph>& parts);

/// `c` equally-sized random connected components, each a connected G(n/c, m/c).
[[nodiscard]] Graph multi_component(std::size_t n, std::size_t m, std::size_t c, Rng& rng);

/// Planted-communities graph ("social network"): `c` dense G(n/c, p_in)
/// blocks plus `bridges` random inter-block edges (0 bridges keeps the
/// blocks as separate components).
[[nodiscard]] Graph planted_communities(std::size_t n, std::size_t c, double p_in,
                                        std::size_t bridges, Rng& rng);

/// Connected bipartite graph: random tree on the bipartition classes plus
/// extra class-crossing edges. Always 2-colorable.
[[nodiscard]] Graph bipartite(std::size_t n_left, std::size_t n_right, std::size_t m, Rng& rng);

/// Bipartite graph plus one odd cycle — non-bipartite by construction.
[[nodiscard]] Graph odd_cycle_spoiler(std::size_t n_left, std::size_t n_right, std::size_t m,
                                      Rng& rng);

/// Two cliques of size n/2 joined by exactly `lambda` edges: the minimum cut
/// is `lambda` (for lambda < n/2 - 1). Used by the min-cut experiments.
[[nodiscard]] Graph dumbbell(std::size_t n, std::size_t lambda, Rng& rng);

/// `cliques` cliques of size `clique_size` chained by single edges — high
/// diameter, high-degree hubs. Flooding's worst case in the k-machine model.
[[nodiscard]] Graph clique_chain(std::size_t cliques, std::size_t clique_size);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices chosen proportionally to degree. Connected,
/// heavy-tailed degree distribution (web/social-graph shape).
[[nodiscard]] Graph preferential_attachment(std::size_t n, std::size_t attach, Rng& rng);

/// R-MAT (Chakrabarti–Zhan–Faloutsos): recursive quadrant descent over the
/// adjacency matrix with probabilities (a, b, c, 1-a-b-c). Skewed degrees
/// and clustered structure — the standard "hard" synthetic input for
/// distributed graph processing. Self-loops and duplicate edges are
/// dropped, so the result has at most `m` edges (attempts are capped).
[[nodiscard]] Graph rmat(std::size_t n, std::size_t m, Rng& rng, double a = 0.57,
                         double b = 0.19, double c = 0.19);

// ---------------------------------------------------------------------------
// Chunked parallel generators (the large-graph input pipeline, KaGen-style).
//
// The edge stream is split into fixed chunks, and chunk c draws exclusively
// from its own counter-derived PRNG stream Rng(split3(seed, kind, c)) —
// so the generated graph is a pure function of (parameters, seed,
// edges_per_chunk) and NEVER of the thread count: chunks are assembled in
// fixed chunk order whatever schedule executed them. gnm_par additionally
// stratifies the linear edge-index space [0, C(n,2)) so chunks own disjoint
// ranges: exactly m distinct edges with no cross-chunk coordination (a
// stratified G(n,m): uniform within each stratum, per-stratum counts split
// proportionally rather than hypergeometrically — indistinguishable for the
// sparse benchmark regime and deterministic by construction). rmat_par
// parallelizes the quadrant descents (the expensive half) and dedups
// candidates in chunk order, so it keeps the serial generator's contract:
// at most m edges.

struct ParGenConfig {
  std::uint64_t seed = 1;
  /// Worker threads; 0 = hardware concurrency. Does NOT affect the result.
  unsigned threads = 1;
  /// Stream granularity. Part of the generated graph's identity (changing
  /// it changes which stream an edge is drawn from) — leave at the default
  /// for reproducible benchmarks.
  std::size_t edges_per_chunk = 1 << 16;
  /// 0 = unweighted (w = 1); else w = 1 + prf(seed, edge_index) % limit —
  /// weights are attached per edge id, so they are chunk- and
  /// thread-invariant too.
  Weight weight_limit = 0;
};

/// Stratified-uniform G(n, m): exactly m distinct edges, deterministic in
/// (n, m, cfg.seed, cfg.edges_per_chunk) for every thread count. Pass a
/// pool to reuse the caller's workers (cfg.threads is then ignored);
/// otherwise one is spun up for the call.
[[nodiscard]] Graph gnm_par(std::size_t n, std::size_t m, const ParGenConfig& cfg,
                            ThreadPool* pool = nullptr);

/// Chunked parallel R-MAT; same skew/clustering shape as gen::rmat, at most
/// m edges, deterministic for every thread count. Same pool contract as
/// gnm_par.
[[nodiscard]] Graph rmat_par(std::size_t n, std::size_t m, const ParGenConfig& cfg,
                             double a = 0.57, double b = 0.19, double c = 0.19,
                             ThreadPool* pool = nullptr);

// ---------------------------------------------------------------------------
// Streaming ingest contract (mirrors the runtime.hpp porting recipe style).
//
// The *_stream generators emit the SAME deterministic chunked edge stream as
// their *_par counterparts, but hand each chunk to a sink callback instead
// of assembling a global edge list — the piece that lets the shard-direct
// ingest plane (cluster/stream_ingest.hpp) build per-machine shards without
// ever materializing the global graph.
//
// Sink semantics:
//   1. sink(chunk, edges) is invoked exactly once per chunk id in
//      [0, chunks), where the chunk count and each chunk's contents are a
//      pure function of (generator parameters, cfg.seed,
//      cfg.edges_per_chunk) — NEVER of the thread count or of which worker
//      ran the chunk (per-chunk counter-derived PRNG streams, exactly as in
//      gnm_par/rmat_par).
//   2. Invocations may run CONCURRENTLY (one per pool lane) and in ANY
//      order; the sink must be thread-safe. The chunk id is the stream
//      position for consumers that need to re-establish a canonical order.
//   3. The span is only valid for the duration of the call — the buffer
//      behind it is lane-private scratch, recycled for the lane's next
//      chunk. Sinks must consume or copy, never retain.
//   4. A stream source is RE-RUNNABLE: invoking the generator again with
//      identical arguments replays the identical stream (the ingest plane's
//      count pass + fill pass each replay it once, trading one extra
//      generation pass for never buffering the stream).
//   5. gnm_stream chunks contain exactly the stratified G(n,m) edges —
//      distinct by construction. rmat_stream chunks are raw quadrant-
//      descent CANDIDATES: duplicates may appear within and across chunks;
//      every occurrence of an edge carries the identical weight (weights
//      key off the canonical edge index), so consumers dedup by (u, v)
//      alone. Neither stream ever emits a self-loop.
//
// Determinism rule for consumers: any state built from the stream must be
// invariant to chunk arrival order (sort/reduce into a canonical form, as
// stream_ingest does) so that the result is bit-identical for every thread
// count and ingest batching.
// ---------------------------------------------------------------------------

/// Per-chunk consumer of a streamed edge list; see the contract above.
using EdgeChunkSink = std::function<void(std::size_t chunk, std::span<const WeightedEdge>)>;

/// A re-runnable edge stream: invoking it replays the full chunk sequence
/// into the sink. Closures over the *_stream generators below (or over an
/// in-memory edge list, for tests) are the values the ingest plane consumes.
using EdgeStream = std::function<void(const EdgeChunkSink&)>;

/// Streamed flavor of gnm_par: identical stream plan, chunk contents and
/// weights — gnm_par(args...) equals collecting gnm_stream(args...) chunks
/// in chunk order. Same pool contract as gnm_par.
void gnm_stream(std::size_t n, std::size_t m, const ParGenConfig& cfg,
                const EdgeChunkSink& sink, ThreadPool* pool = nullptr);

/// Streamed flavor of rmat_par: emits the identical candidate stream the
/// materialized generator dedups in chunk order (contract rule 5).
void rmat_stream(std::size_t n, std::size_t m, const ParGenConfig& cfg,
                 const EdgeChunkSink& sink, double a = 0.57, double b = 0.19,
                 double c = 0.19, ThreadPool* pool = nullptr);

/// Convenience closures for the ingest plane. The pool pointer is captured;
/// null spins a fresh pool per replay from cfg.threads.
[[nodiscard]] EdgeStream gnm_stream_source(std::size_t n, std::size_t m, ParGenConfig cfg,
                                           ThreadPool* pool = nullptr);
[[nodiscard]] EdgeStream rmat_stream_source(std::size_t n, std::size_t m, ParGenConfig cfg,
                                            double a = 0.57, double b = 0.19,
                                            double c = 0.19, ThreadPool* pool = nullptr);

/// An in-memory edge list replayed as a chunked stream (sequential; chunk
/// size is ingest batching only — consumers must produce identical results
/// for every value). Borrows `edges`; the caller keeps it alive.
[[nodiscard]] EdgeStream edge_list_stream(const std::vector<WeightedEdge>& edges,
                                          std::size_t edges_per_chunk = 1 << 16);

}  // namespace kmm::gen
