#include "graph/algorithms.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/random.hpp"
#include "util/union_find.hpp"

namespace kmm::ref {

std::vector<Vertex> component_labels(const Graph& g) {
  const std::size_t n = g.num_vertices();
  constexpr Vertex kUnset = std::numeric_limits<Vertex>::max();
  std::vector<Vertex> label(n, kUnset);
  std::vector<Vertex> stack;
  for (Vertex s = 0; s < n; ++s) {
    if (label[s] != kUnset) continue;
    label[s] = s;  // s is the smallest id in its component (scan order)
    stack.push_back(s);
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      for (const auto& he : g.neighbors(v)) {
        if (label[he.to] == kUnset) {
          label[he.to] = s;
          stack.push_back(he.to);
        }
      }
    }
  }
  return label;
}

std::size_t component_count(const Graph& g) {
  UnionFind uf(g.num_vertices());
  for (const auto& e : g.edges()) uf.unite(e.u, e.v);
  return uf.component_count();
}

bool is_connected(const Graph& g) {
  return g.num_vertices() <= 1 || component_count(g) == 1;
}

bool same_component(const Graph& g, Vertex s, Vertex t) {
  const auto labels = component_labels(g);
  return labels[s] == labels[t];
}

std::vector<WeightedEdge> minimum_spanning_forest(const Graph& g) {
  auto edges = g.edges();
  const std::size_t n = g.num_vertices();
  std::sort(edges.begin(), edges.end(), [n](const WeightedEdge& a, const WeightedEdge& b) {
    // Weight first; deterministic tie-break by edge index.
    if (a.w != b.w) return a.w < b.w;
    return edge_index(a.u, a.v, n) < edge_index(b.u, b.v, n);
  });
  UnionFind uf(n);
  std::vector<WeightedEdge> forest;
  for (const auto& e : edges) {
    if (uf.unite(e.u, e.v)) forest.push_back(e);
  }
  std::sort(forest.begin(), forest.end(), [](const WeightedEdge& a, const WeightedEdge& b) {
    return std::pair{a.u, a.v} < std::pair{b.u, b.v};
  });
  return forest;
}

Weight msf_weight(const Graph& g) {
  Weight total = 0;
  for (const auto& e : minimum_spanning_forest(g)) total += e.w;
  return total;
}

Weight prim_mst_weight(const Graph& g) {
  const std::size_t n = g.num_vertices();
  if (n == 0) return 0;
  std::vector<bool> in_tree(n, false);
  using Item = std::pair<Weight, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0, 0);
  Weight total = 0;
  std::size_t taken = 0;
  while (!pq.empty() && taken < n) {
    const auto [w, v] = pq.top();
    pq.pop();
    if (in_tree[v]) continue;
    in_tree[v] = true;
    total += w;
    ++taken;
    for (const auto& he : g.neighbors(v)) {
      if (!in_tree[he.to]) pq.emplace(he.weight, he.to);
    }
  }
  return total;
}

bool is_bipartite(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<int> color(n, -1);
  std::vector<Vertex> stack;
  for (Vertex s = 0; s < n; ++s) {
    if (color[s] != -1) continue;
    color[s] = 0;
    stack.push_back(s);
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      for (const auto& he : g.neighbors(v)) {
        if (color[he.to] == -1) {
          color[he.to] = 1 - color[v];
          stack.push_back(he.to);
        } else if (color[he.to] == color[v]) {
          return false;
        }
      }
    }
  }
  return true;
}

bool has_cycle(const Graph& g) {
  // An undirected graph has a cycle iff m > n - cc.
  return g.num_edges() > g.num_vertices() - component_count(g);
}

bool edge_on_cycle(const Graph& g, Vertex u, Vertex v) {
  KMM_CHECK_MSG(g.has_edge(u, v), "edge_on_cycle: edge not present");
  const Graph cut = g.without_edges({{u, v}});
  return same_component(cut, u, v);
}

std::uint64_t stoer_wagner_min_cut(const Graph& g) {
  const std::size_t n = g.num_vertices();
  if (n < 2 || !is_connected(g)) return 0;

  // Dense adjacency of merged super-vertices: one contiguous n*n buffer
  // (row stride n), so MA-order scans walk cache lines instead of chasing
  // per-row heap blocks.
  std::vector<std::uint64_t> w(n * n, 0);
  for (const auto& e : g.edges()) {
    w[e.u * n + e.v] += e.w;
    w[e.v * n + e.u] += e.w;
  }
  std::vector<std::size_t> active(n);
  for (std::size_t i = 0; i < n; ++i) active[i] = i;

  // MA-order scratch, reused across contractions (shrunk to the active
  // prefix each round).
  std::vector<std::uint64_t> conn(n, 0);
  std::vector<char> added(n, 0);

  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  while (active.size() > 1) {
    const std::size_t m = active.size();
    // Maximum-adjacency order over the active super-vertices.
    std::fill(conn.begin(), conn.begin() + static_cast<std::ptrdiff_t>(m), 0);
    std::fill(added.begin(), added.begin() + static_cast<std::ptrdiff_t>(m), 0);
    std::size_t prev = 0, last = 0;
    for (std::size_t step = 0; step < m; ++step) {
      std::size_t pick = m;
      for (std::size_t i = 0; i < m; ++i) {
        if (!added[i] && (pick == m || conn[i] > conn[pick])) pick = i;
      }
      added[pick] = 1;
      prev = last;
      last = pick;
      const std::uint64_t* row = &w[active[pick] * n];
      for (std::size_t i = 0; i < m; ++i) {
        if (!added[i]) conn[i] += row[active[i]];
      }
    }
    best = std::min(best, conn[last]);
    // Merge `last` into `prev`. Only active rows/columns are ever read
    // again, so the merge loops touch the active set instead of all n.
    const std::size_t a = active[prev], b = active[last];
    for (const std::size_t i : active) {
      w[a * n + i] += w[b * n + i];
      w[i * n + a] += w[i * n + b];
    }
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(last));
  }
  return best;
}

std::vector<std::size_t> bfs_distances(const Graph& g, Vertex s) {
  const std::size_t n = g.num_vertices();
  std::vector<std::size_t> dist(n, std::numeric_limits<std::size_t>::max());
  std::queue<Vertex> q;
  dist[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const Vertex v = q.front();
    q.pop();
    for (const auto& he : g.neighbors(v)) {
      if (dist[he.to] == std::numeric_limits<std::size_t>::max()) {
        dist[he.to] = dist[v] + 1;
        q.push(he.to);
      }
    }
  }
  return dist;
}

std::size_t diameter_lower_bound(const Graph& g, std::size_t probes) {
  const std::size_t n = g.num_vertices();
  if (n == 0) return 0;
  std::size_t best = 0;
  Rng rng(0xd1a3e7e5);
  Vertex start = 0;
  for (std::size_t i = 0; i < std::max<std::size_t>(probes, 1); ++i) {
    const auto dist = bfs_distances(g, start);
    Vertex far = start;
    for (Vertex v = 0; v < n; ++v) {
      if (dist[v] != std::numeric_limits<std::size_t>::max() && dist[v] >= dist[far]) far = v;
    }
    if (dist[far] != std::numeric_limits<std::size_t>::max()) best = std::max(best, dist[far]);
    // Next probe: alternate the farthest vertex (double sweep) and random.
    start = (i % 2 == 0) ? far : static_cast<Vertex>(rng.next_below(n));
  }
  return best;
}

std::vector<std::pair<Vertex, Vertex>> bridges(const Graph& g) {
  const std::size_t n = g.num_vertices();
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> disc(n, kNone), low(n, 0);
  std::vector<std::pair<Vertex, Vertex>> out;
  std::size_t timer = 0;

  // Iterative DFS with an explicit stack of (vertex, parent, edge cursor).
  struct Frame {
    Vertex v;
    Vertex parent;
    bool skipped_parent_edge;  // handle one parallel-free parent edge
    std::size_t cursor;
  };
  std::vector<Frame> stack;
  for (Vertex root = 0; root < n; ++root) {
    if (disc[root] != kNone) continue;
    disc[root] = low[root] = timer++;
    stack.push_back({root, root, false, 0});
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto nbrs = g.neighbors(f.v);
      if (f.cursor < nbrs.size()) {
        const Vertex to = nbrs[f.cursor++].to;
        if (to == f.parent && !f.skipped_parent_edge) {
          // Skip the tree edge back to the parent exactly once (the graph
          // has no parallel edges, so one skip is correct).
          f.skipped_parent_edge = true;
          continue;
        }
        if (disc[to] == kNone) {
          disc[to] = low[to] = timer++;
          stack.push_back({to, f.v, false, 0});
        } else {
          low[f.v] = std::min(low[f.v], disc[to]);
        }
      } else {
        const Frame done = f;
        stack.pop_back();
        if (!stack.empty()) {
          Frame& up = stack.back();
          low[up.v] = std::min(low[up.v], low[done.v]);
          if (low[done.v] > disc[up.v]) {
            out.emplace_back(std::min(up.v, done.v), std::max(up.v, done.v));
          }
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool is_two_edge_connected(const Graph& g) {
  if (g.num_vertices() < 2) return false;
  return is_connected(g) && bridges(g).empty();
}

bool is_spanning_forest(const Graph& g,
                        const std::vector<std::pair<Vertex, Vertex>>& edges) {
  UnionFind uf(g.num_vertices());
  for (auto [u, v] : edges) {
    if (!g.has_edge(u, v)) return false;  // must be real edges
    if (!uf.unite(u, v)) return false;    // must be acyclic
  }
  // Must connect exactly what g connects: same number of components.
  return uf.component_count() == component_count(g);
}

}  // namespace kmm::ref
