#include "graph/graph.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>

#include "util/thread_pool.hpp"

namespace kmm {

namespace {

// Below this many edges the parallel ctor's extra passes (atomic counts,
// scatter, per-bucket sorts) cost more than they save.
constexpr std::size_t kParallelEdgeCutoff = 1 << 15;

constexpr bool edge_key_less(const WeightedEdge& a, const WeightedEdge& b) noexcept {
  return a.u < b.u || (a.u == b.u && a.v < b.v);
}

}  // namespace

Graph::Graph(std::size_t n, std::vector<WeightedEdge> edges) : n_(n) {
  build_serial(std::move(edges));
}

Expected<Graph, BuildError> Graph::make(std::size_t n, std::vector<WeightedEdge> edges,
                                        ThreadPool* pool) {
  for (const auto& e : edges) {
    if (e.u >= n || e.v >= n) {
      return Expected<Graph, BuildError>::err(
          {"edge endpoint out of range: {" + std::to_string(e.u) + ", " + std::to_string(e.v) +
           "} with n = " + std::to_string(n)});
    }
    if (e.u == e.v) {
      return Expected<Graph, BuildError>::err(
          {"self-loops are not supported: vertex " + std::to_string(e.u)});
    }
  }
  // Parallel-edge detection on a canonical key copy, leaving `edges` in the
  // caller's order for the ctor (whose own sort produces the CSR).
  std::vector<std::pair<Vertex, Vertex>> keys;
  keys.reserve(edges.size());
  for (const auto& e : edges) {
    keys.emplace_back(e.u < e.v ? e.u : e.v, e.u < e.v ? e.v : e.u);
  }
  std::sort(keys.begin(), keys.end());
  if (const auto dup = std::adjacent_find(keys.begin(), keys.end()); dup != keys.end()) {
    return Expected<Graph, BuildError>::err(
        {"parallel edges are not supported: duplicate edge {" + std::to_string(dup->first) +
         ", " + std::to_string(dup->second) + "}"});
  }
  return Graph(n, std::move(edges), pool);
}

Graph::Graph(std::size_t n, std::vector<WeightedEdge> edges, ThreadPool* pool) : n_(n) {
  if (pool == nullptr || pool->size() <= 1 || edges.size() < kParallelEdgeCutoff) {
    build_serial(std::move(edges));
  } else {
    build_parallel(std::move(edges), *pool);
  }
}

void Graph::build_serial(std::vector<WeightedEdge> edges) {
  // Canonicalize to u < v, sort, and validate.
  for (auto& e : edges) {
    KMM_CHECK_MSG(e.u < n_ && e.v < n_, "edge endpoint out of range");
    KMM_CHECK_MSG(e.u != e.v, "self-loops are not supported");
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges.begin(), edges.end(), [](const WeightedEdge& a, const WeightedEdge& b) {
    return std::pair{a.u, a.v} < std::pair{b.u, b.v};
  });
  for (std::size_t i = 1; i < edges.size(); ++i) {
    KMM_CHECK_MSG(edges[i - 1].u != edges[i].u || edges[i - 1].v != edges[i].v,
                  "parallel edges are not supported");
  }
  edges_ = std::move(edges);

  offsets_.assign(n_ + 1, 0);
  for (const auto& e : edges_) {
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
    max_weight_ = std::max(max_weight_, e.w);
  }
  for (std::size_t v = 0; v < n_; ++v) offsets_[v + 1] += offsets_[v];

  adj_.resize(2 * edges_.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& e : edges_) {
    adj_[cursor[e.u]++] = HalfEdge{e.v, e.w};
    adj_[cursor[e.v]++] = HalfEdge{e.u, e.w};
  }
}

void Graph::build_parallel(std::vector<WeightedEdge> edges, ThreadPool& pool) {
  const std::size_t m = edges.size();
  const std::size_t chunks = parallel_chunks(m, pool.size());
  const auto echunk = [&](std::size_t c) {
    return std::pair{m * c / chunks, m * (c + 1) / chunks};
  };
  const std::size_t vchunks = parallel_chunks(n_, pool.size());
  const auto vchunk = [&](std::size_t c) {
    return std::pair{n_ * c / vchunks, n_ * (c + 1) / vchunks};
  };

  // Pass 1: canonicalize to u < v, validate, per-chunk max weight. A failed
  // KMM_CHECK aborts the process, so firing from a worker is fine.
  std::vector<Weight> chunk_max(chunks, 0);
  std::vector<std::uint8_t> chunk_sorted(chunks, 1);
  pool.parallel_for(chunks, [&](std::size_t c) {
    const auto [lo, hi] = echunk(c);
    Weight mx = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      auto& e = edges[i];
      KMM_CHECK_MSG(e.u < n_ && e.v < n_, "edge endpoint out of range");
      KMM_CHECK_MSG(e.u != e.v, "self-loops are not supported");
      if (e.u > e.v) std::swap(e.u, e.v);
      mx = std::max(mx, e.w);
    }
    chunk_max[c] = mx;
  });
  for (const Weight w : chunk_max) max_weight_ = std::max(max_weight_, w);

  // Pass 2: sort by (u, v) — skipped when the input is already canonical
  // (the chunked generators emit edges in ascending edge-index order).
  // Chunk c checks the pairs ending in [lo, hi), so boundaries are covered.
  pool.parallel_for(chunks, [&](std::size_t c) {
    const auto [lo, hi] = echunk(c);
    for (std::size_t i = std::max<std::size_t>(lo, 1); i < hi; ++i) {
      if (edge_key_less(edges[i], edges[i - 1])) {
        chunk_sorted[c] = 0;
        return;
      }
    }
  });
  const bool pre_sorted =
      std::all_of(chunk_sorted.begin(), chunk_sorted.end(), [](std::uint8_t s) { return s != 0; });
  if (!pre_sorted) {
    // Counting sort by u (atomic count -> prefix -> atomic scatter), then
    // each u-bucket is sorted by v. The scatter order inside a bucket is
    // scheduling-dependent, but the bucket sort re-canonicalizes it: edge
    // keys are unique, so the final order is a total order — deterministic
    // for every thread count.
    auto counts = std::make_unique<std::atomic<std::uint32_t>[]>(n_);
    pool.parallel_for(vchunks, [&](std::size_t c) {
      const auto [lo, hi] = vchunk(c);
      for (std::size_t v = lo; v < hi; ++v) counts[v].store(0, std::memory_order_relaxed);
    });
    pool.parallel_for(chunks, [&](std::size_t c) {
      const auto [lo, hi] = echunk(c);
      for (std::size_t i = lo; i < hi; ++i) {
        counts[edges[i].u].fetch_add(1, std::memory_order_relaxed);
      }
    });
    std::vector<std::size_t> bucket_start(n_ + 1, 0);
    for (std::size_t v = 0; v < n_; ++v) {
      bucket_start[v + 1] = bucket_start[v] + counts[v].load(std::memory_order_relaxed);
      counts[v].store(0, std::memory_order_relaxed);  // reuse as scatter cursors
    }
    std::vector<WeightedEdge> sorted(m);
    pool.parallel_for(chunks, [&](std::size_t c) {
      const auto [lo, hi] = echunk(c);
      for (std::size_t i = lo; i < hi; ++i) {
        const auto rank = counts[edges[i].u].fetch_add(1, std::memory_order_relaxed);
        sorted[bucket_start[edges[i].u] + rank] = edges[i];
      }
    });
    pool.parallel_for(vchunks, [&](std::size_t c) {
      const auto [lo, hi] = vchunk(c);
      for (std::size_t v = lo; v < hi; ++v) {
        std::sort(sorted.begin() + static_cast<std::ptrdiff_t>(bucket_start[v]),
                  sorted.begin() + static_cast<std::ptrdiff_t>(bucket_start[v + 1]),
                  [](const WeightedEdge& a, const WeightedEdge& b) { return a.v < b.v; });
      }
    });
    edges = std::move(sorted);
  }

  // Pass 3: duplicate rejection on the sorted list (adjacent equal keys).
  pool.parallel_for(chunks, [&](std::size_t c) {
    const auto [lo, hi] = echunk(c);
    for (std::size_t i = std::max<std::size_t>(lo, 1); i < hi; ++i) {
      KMM_CHECK_MSG(edges[i - 1].u != edges[i].u || edges[i - 1].v != edges[i].v,
                    "parallel edges are not supported");
    }
  });
  edges_ = std::move(edges);

  // Pass 4: degrees -> offsets (serial prefix over n is cheap relative to
  // the edge passes).
  auto degree = std::make_unique<std::atomic<std::uint32_t>[]>(n_);
  pool.parallel_for(vchunks, [&](std::size_t c) {
    const auto [lo, hi] = vchunk(c);
    for (std::size_t v = lo; v < hi; ++v) degree[v].store(0, std::memory_order_relaxed);
  });
  pool.parallel_for(chunks, [&](std::size_t c) {
    const auto [lo, hi] = echunk(c);
    for (std::size_t i = lo; i < hi; ++i) {
      degree[edges_[i].u].fetch_add(1, std::memory_order_relaxed);
      degree[edges_[i].v].fetch_add(1, std::memory_order_relaxed);
    }
  });
  offsets_.assign(n_ + 1, 0);
  for (std::size_t v = 0; v < n_; ++v) {
    offsets_[v + 1] = offsets_[v] + degree[v].load(std::memory_order_relaxed);
    degree[v].store(0, std::memory_order_relaxed);  // reuse as scatter cursors
  }

  // Pass 5: adjacency scatter + per-vertex neighbor sort. The serial fill
  // appends each vertex's lower neighbors (ascending) before its higher
  // neighbors (ascending) — i.e. the list is sorted by neighbor id — so
  // sorting each scattered list reproduces the serial adjacency exactly.
  adj_.resize(2 * m);
  pool.parallel_for(chunks, [&](std::size_t c) {
    const auto [lo, hi] = echunk(c);
    for (std::size_t i = lo; i < hi; ++i) {
      const auto& e = edges_[i];
      const auto ru = degree[e.u].fetch_add(1, std::memory_order_relaxed);
      adj_[offsets_[e.u] + ru] = HalfEdge{e.v, e.w};
      const auto rv = degree[e.v].fetch_add(1, std::memory_order_relaxed);
      adj_[offsets_[e.v] + rv] = HalfEdge{e.u, e.w};
    }
  });
  pool.parallel_for(vchunks, [&](std::size_t c) {
    const auto [lo, hi] = vchunk(c);
    for (std::size_t v = lo; v < hi; ++v) {
      std::sort(adj_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]),
                adj_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]),
                [](const HalfEdge& a, const HalfEdge& b) { return a.to < b.to; });
    }
  });
}

bool Graph::has_edge(Vertex x, Vertex y) const {
  if (x >= n_ || y >= n_ || x == y) return false;
  // Search from the lower-degree endpoint.
  if (degree(x) > degree(y)) std::swap(x, y);
  for (const auto& he : neighbors(x)) {
    if (he.to == y) return true;
  }
  return false;
}

bool Graph::has_unique_weights() const {
  std::vector<Weight> ws;
  ws.reserve(edges_.size());
  for (const auto& e : edges_) ws.push_back(e.w);
  std::sort(ws.begin(), ws.end());
  return std::adjacent_find(ws.begin(), ws.end()) == ws.end();
}

Graph Graph::without_edges(const std::vector<std::pair<Vertex, Vertex>>& removed) const {
  std::vector<EdgeIndex> gone;
  gone.reserve(removed.size());
  for (auto [x, y] : removed) gone.push_back(edge_index(x, y, n_));
  std::sort(gone.begin(), gone.end());

  std::vector<WeightedEdge> kept;
  kept.reserve(edges_.size());
  for (const auto& e : edges_) {
    if (!std::binary_search(gone.begin(), gone.end(), edge_index(e.u, e.v, n_))) {
      kept.push_back(e);
    }
  }
  return Graph(n_, std::move(kept));
}

}  // namespace kmm
