#include "graph/graph.hpp"

#include <algorithm>

namespace kmm {

Graph::Graph(std::size_t n, std::vector<WeightedEdge> edges) : n_(n) {
  // Canonicalize to u < v, sort, and validate.
  for (auto& e : edges) {
    KMM_CHECK_MSG(e.u < n && e.v < n, "edge endpoint out of range");
    KMM_CHECK_MSG(e.u != e.v, "self-loops are not supported");
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges.begin(), edges.end(), [](const WeightedEdge& a, const WeightedEdge& b) {
    return std::pair{a.u, a.v} < std::pair{b.u, b.v};
  });
  for (std::size_t i = 1; i < edges.size(); ++i) {
    KMM_CHECK_MSG(edges[i - 1].u != edges[i].u || edges[i - 1].v != edges[i].v,
                  "parallel edges are not supported");
  }
  edges_ = std::move(edges);

  offsets_.assign(n_ + 1, 0);
  for (const auto& e : edges_) {
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
    max_weight_ = std::max(max_weight_, e.w);
  }
  for (std::size_t v = 0; v < n_; ++v) offsets_[v + 1] += offsets_[v];

  adj_.resize(2 * edges_.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& e : edges_) {
    adj_[cursor[e.u]++] = HalfEdge{e.v, e.w};
    adj_[cursor[e.v]++] = HalfEdge{e.u, e.w};
  }
}

bool Graph::has_edge(Vertex x, Vertex y) const {
  if (x >= n_ || y >= n_ || x == y) return false;
  // Search from the lower-degree endpoint.
  if (degree(x) > degree(y)) std::swap(x, y);
  for (const auto& he : neighbors(x)) {
    if (he.to == y) return true;
  }
  return false;
}

bool Graph::has_unique_weights() const {
  std::vector<Weight> ws;
  ws.reserve(edges_.size());
  for (const auto& e : edges_) ws.push_back(e.w);
  std::sort(ws.begin(), ws.end());
  return std::adjacent_find(ws.begin(), ws.end()) == ws.end();
}

Graph Graph::without_edges(const std::vector<std::pair<Vertex, Vertex>>& removed) const {
  std::vector<EdgeIndex> gone;
  gone.reserve(removed.size());
  for (auto [x, y] : removed) gone.push_back(edge_index(x, y, n_));
  std::sort(gone.begin(), gone.end());

  std::vector<WeightedEdge> kept;
  kept.reserve(edges_.size());
  for (const auto& e : edges_) {
    if (!std::binary_search(gone.begin(), gone.end(), edge_index(e.u, e.v, n_))) {
      kept.push_back(e);
    }
  }
  return Graph(n_, std::move(kept));
}

}  // namespace kmm
