#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <thread>
#include <unordered_set>

#include "graph/builder.hpp"
#include "util/codec.hpp"
#include "util/thread_pool.hpp"

namespace kmm::gen {

Graph gnm(std::size_t n, std::size_t m, Rng& rng) {
  const std::uint64_t max_m = n * (n - 1) / 2;
  KMM_CHECK_MSG(m <= max_m, "G(n,m): too many edges requested");
  GraphBuilder b(n);
  while (b.num_edges() < m) {
    const auto u = static_cast<Vertex>(rng.next_below(n));
    const auto v = static_cast<Vertex>(rng.next_below(n));
    b.add_edge(u, v);
  }
  return b.build();
}

Graph gnp(std::size_t n, double p, Rng& rng) {
  KMM_CHECK(p >= 0.0 && p <= 1.0);
  GraphBuilder b(n);
  if (p <= 0.0) return b.build();
  if (p >= 1.0) return complete(n);
  // Geometric skipping over the C(n,2) potential edges.
  const double logq = std::log1p(-p);
  std::uint64_t idx = 0;
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  while (true) {
    const double r = rng.next_double();
    const auto skip = static_cast<std::uint64_t>(std::floor(std::log1p(-r) / logq));
    idx += skip;
    if (idx >= total) break;
    // Decode linear index into (u, v), u < v.
    // Row u starts at offset u*n - u*(u+3)/2 ... use incremental decode.
    std::uint64_t u = 0, row = n - 1;
    std::uint64_t rem = idx;
    while (rem >= row) {
      rem -= row;
      ++u;
      --row;
    }
    const std::uint64_t v = u + 1 + rem;
    b.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
    ++idx;
  }
  return b.build();
}

Graph connected_gnm(std::size_t n, std::size_t m, Rng& rng) {
  KMM_CHECK_MSG(n == 0 || m + 1 >= n, "connected_gnm: m must be at least n-1");
  GraphBuilder b(n);
  // Random attachment tree guarantees connectivity.
  for (std::size_t v = 1; v < n; ++v) {
    const auto u = static_cast<Vertex>(rng.next_below(v));
    b.add_edge(u, static_cast<Vertex>(v));
  }
  while (b.num_edges() < m) {
    const auto u = static_cast<Vertex>(rng.next_below(n));
    const auto v = static_cast<Vertex>(rng.next_below(n));
    b.add_edge(u, v);
  }
  return b.build();
}

Graph path(std::size_t n) {
  GraphBuilder b(n);
  for (std::size_t v = 1; v < n; ++v) {
    b.add_edge(static_cast<Vertex>(v - 1), static_cast<Vertex>(v));
  }
  return b.build();
}

Graph cycle(std::size_t n) {
  KMM_CHECK(n >= 3);
  GraphBuilder b(n);
  for (std::size_t v = 1; v < n; ++v) {
    b.add_edge(static_cast<Vertex>(v - 1), static_cast<Vertex>(v));
  }
  b.add_edge(static_cast<Vertex>(n - 1), 0);
  return b.build();
}

Graph star(std::size_t n) {
  GraphBuilder b(n);
  for (std::size_t v = 1; v < n; ++v) b.add_edge(0, static_cast<Vertex>(v));
  return b.build();
}

Graph complete(std::size_t n) {
  GraphBuilder b(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      b.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
    }
  }
  return b.build();
}

Graph grid(std::size_t rows, std::size_t cols) {
  GraphBuilder b(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<Vertex>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph binary_tree(std::size_t n) {
  GraphBuilder b(n);
  for (std::size_t v = 1; v < n; ++v) {
    b.add_edge(static_cast<Vertex>((v - 1) / 2), static_cast<Vertex>(v));
  }
  return b.build();
}

Graph random_tree(std::size_t n, Rng& rng) {
  GraphBuilder b(n);
  for (std::size_t v = 1; v < n; ++v) {
    b.add_edge(static_cast<Vertex>(rng.next_below(v)), static_cast<Vertex>(v));
  }
  return b.build();
}

Graph disjoint_union(const std::vector<Graph>& parts) {
  std::size_t n = 0;
  for (const auto& g : parts) n += g.num_vertices();
  std::vector<WeightedEdge> edges;
  Vertex offset = 0;
  for (const auto& g : parts) {
    for (const auto& e : g.edges()) {
      edges.push_back(WeightedEdge{e.u + offset, e.v + offset, e.w});
    }
    offset += static_cast<Vertex>(g.num_vertices());
  }
  return Graph(n, std::move(edges));
}

Graph multi_component(std::size_t n, std::size_t m, std::size_t c, Rng& rng) {
  KMM_CHECK(c >= 1 && n >= c);
  std::vector<Graph> parts;
  parts.reserve(c);
  const std::size_t per_n = n / c;
  const std::size_t per_m = m / c;
  std::size_t used = 0;
  for (std::size_t i = 0; i < c; ++i) {
    const std::size_t ni = (i + 1 == c) ? n - used : per_n;
    const std::size_t cap = ni * (ni - 1) / 2;
    const std::size_t mi = std::min(std::max(per_m, ni > 0 ? ni - 1 : 0), cap);
    parts.push_back(ni <= 1 ? Graph(ni, {}) : connected_gnm(ni, mi, rng));
    used += ni;
  }
  return disjoint_union(parts);
}

Graph planted_communities(std::size_t n, std::size_t c, double p_in, std::size_t bridges,
                          Rng& rng) {
  KMM_CHECK(c >= 1 && n >= c);
  const std::size_t per = n / c;
  GraphBuilder b(n);
  for (std::size_t blk = 0; blk < c; ++blk) {
    const std::size_t lo = blk * per;
    const std::size_t hi = (blk + 1 == c) ? n : lo + per;
    // Connected core (path) + random internal edges at density p_in.
    for (std::size_t v = lo + 1; v < hi; ++v) {
      b.add_edge(static_cast<Vertex>(v - 1), static_cast<Vertex>(v));
    }
    const std::size_t span = hi - lo;
    const auto internal =
        static_cast<std::size_t>(p_in * static_cast<double>(span * (span - 1) / 2));
    for (std::size_t t = 0; t < internal; ++t) {
      const auto u = static_cast<Vertex>(lo + rng.next_below(span));
      const auto v = static_cast<Vertex>(lo + rng.next_below(span));
      b.add_edge(u, v);
    }
  }
  std::size_t added = 0;
  while (added < bridges) {
    const auto u = static_cast<Vertex>(rng.next_below(n));
    const auto v = static_cast<Vertex>(rng.next_below(n));
    if (u / per != v / per && b.add_edge(u, v)) ++added;
  }
  return b.build();
}

Graph bipartite(std::size_t n_left, std::size_t n_right, std::size_t m, Rng& rng) {
  const std::size_t n = n_left + n_right;
  KMM_CHECK(n_left >= 1 && n_right >= 1);
  GraphBuilder b(n);
  // Spanning "zig-zag" to keep it connected: L0-R0-L1-R1-...
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::size_t li = i / 2 + (i % 2);
    const std::size_t ri = i / 2;
    if (li < n_left && ri < n_right) {
      b.add_edge(static_cast<Vertex>(li), static_cast<Vertex>(n_left + ri));
    }
  }
  // Ensure every vertex touches the other side.
  for (std::size_t l = 0; l < n_left; ++l) {
    b.add_edge(static_cast<Vertex>(l), static_cast<Vertex>(n_left + rng.next_below(n_right)));
  }
  for (std::size_t r = 0; r < n_right; ++r) {
    b.add_edge(static_cast<Vertex>(rng.next_below(n_left)), static_cast<Vertex>(n_left + r));
  }
  while (b.num_edges() < m) {
    const auto l = static_cast<Vertex>(rng.next_below(n_left));
    const auto r = static_cast<Vertex>(n_left + rng.next_below(n_right));
    b.add_edge(l, r);
    if (b.num_edges() >= n_left * n_right) break;  // bipartite-complete
  }
  return b.build();
}

Graph odd_cycle_spoiler(std::size_t n_left, std::size_t n_right, std::size_t m, Rng& rng) {
  const Graph base = bipartite(n_left, n_right, m, rng);
  KMM_CHECK_MSG(n_left >= 2, "need two left vertices for an odd cycle");
  auto edges = base.edges();
  // An edge inside the left class closes an odd cycle through any common
  // right neighbor (the zig-zag guarantees one exists).
  edges.push_back(WeightedEdge{0, 1, 1});
  return Graph(base.num_vertices(), std::move(edges));
}

Graph dumbbell(std::size_t n, std::size_t lambda, Rng& rng) {
  KMM_CHECK(n >= 4 && n % 2 == 0);
  const std::size_t half = n / 2;
  KMM_CHECK_MSG(lambda < half - 1, "dumbbell: lambda must be below the clique degree");
  GraphBuilder b(n);
  for (std::size_t u = 0; u < half; ++u) {
    for (std::size_t v = u + 1; v < half; ++v) {
      b.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
      b.add_edge(static_cast<Vertex>(half + u), static_cast<Vertex>(half + v));
    }
  }
  std::size_t added = 0;
  while (added < lambda) {
    const auto u = static_cast<Vertex>(rng.next_below(half));
    const auto v = static_cast<Vertex>(half + rng.next_below(half));
    if (b.add_edge(u, v)) ++added;
  }
  return b.build();
}

Graph clique_chain(std::size_t cliques, std::size_t clique_size) {
  KMM_CHECK(cliques >= 1 && clique_size >= 2);
  GraphBuilder b(cliques * clique_size);
  for (std::size_t cidx = 0; cidx < cliques; ++cidx) {
    const std::size_t lo = cidx * clique_size;
    for (std::size_t u = 0; u < clique_size; ++u) {
      for (std::size_t v = u + 1; v < clique_size; ++v) {
        b.add_edge(static_cast<Vertex>(lo + u), static_cast<Vertex>(lo + v));
      }
    }
    if (cidx + 1 < cliques) {
      b.add_edge(static_cast<Vertex>(lo + clique_size - 1),
                 static_cast<Vertex>(lo + clique_size));
    }
  }
  return b.build();
}

Graph preferential_attachment(std::size_t n, std::size_t attach, Rng& rng) {
  KMM_CHECK(attach >= 1 && n > attach);
  GraphBuilder b(n);
  // Endpoint pool: sampling a uniform element is degree-proportional.
  std::vector<Vertex> pool;
  pool.reserve(2 * n * attach);
  // Seed clique on the first attach+1 vertices.
  for (std::size_t u = 0; u <= attach; ++u) {
    for (std::size_t v = u + 1; v <= attach; ++v) {
      b.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
      pool.push_back(static_cast<Vertex>(u));
      pool.push_back(static_cast<Vertex>(v));
    }
  }
  for (std::size_t v = attach + 1; v < n; ++v) {
    std::size_t added = 0;
    std::size_t guard = 0;
    while (added < attach) {
      KMM_CHECK_MSG(++guard < 64 * attach, "preferential attachment stuck");
      const Vertex target = pool[rng.next_below(pool.size())];
      if (b.add_edge(static_cast<Vertex>(v), target)) {
        pool.push_back(static_cast<Vertex>(v));
        pool.push_back(target);
        ++added;
      }
    }
  }
  return b.build();
}

Graph rmat(std::size_t n, std::size_t m, Rng& rng, double a, double b, double c) {
  KMM_CHECK(n >= 2);
  KMM_CHECK_MSG(a > 0 && b >= 0 && c >= 0 && a + b + c < 1.0,
                "rmat: quadrant probabilities must be positive and sum below 1");
  const std::uint64_t levels = bits_for(n);
  GraphBuilder builder(n);
  // Attempt cap: duplicates concentrate in the hot quadrant, so dense
  // requests stop making progress; 16 attempts per requested edge is ample
  // for the sparse m = O(n) regime the experiments use.
  const std::size_t max_attempts = 16 * m + 64;
  for (std::size_t attempt = 0; attempt < max_attempts && builder.num_edges() < m;
       ++attempt) {
    std::uint64_t u = 0, v = 0;
    for (std::uint64_t level = 0; level < levels; ++level) {
      const double r = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left: both bits 0
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v || u >= n || v >= n) continue;
    builder.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  return builder.build();
}

// ------------------------------------------------- chunked parallel pipeline

namespace {

// Stream-tag constants: each generator kind derives its per-chunk PRNG
// streams and per-edge weights from a distinct branch of the seed.
constexpr std::uint64_t kGnmStreamTag = 0x676e6d;      // "gnm"
constexpr std::uint64_t kRmatStreamTag = 0x726d6174;   // "rmat"
constexpr std::uint64_t kWeightStreamTag = 0x776569;   // "wei"

unsigned resolve_gen_threads(unsigned requested) {
  return requested != 0 ? requested : std::max(1u, std::thread::hardware_concurrency());
}

// NOT parallel_chunks(): here the chunk count sizes the PRNG streams, so it
// is part of the generated graph's identity and must stay a pure function
// of (m, edges_per_chunk) — never of worker count or scheduling policy.
std::size_t gen_chunks(std::size_t m, std::size_t edges_per_chunk) {
  const std::size_t per = std::max<std::size_t>(edges_per_chunk, 1);
  return std::clamp<std::size_t>((m + per - 1) / per, 1, 4096);
}

Weight edge_weight(const ParGenConfig& cfg, std::uint64_t edge_id) {
  if (cfg.weight_limit == 0) return 1;
  return 1 + split3(cfg.seed, kWeightStreamTag, edge_id) % cfg.weight_limit;
}

/// First linear pair index of row u in the (u < v) row-major enumeration:
/// rows 0..u-1 hold (n-1) + (n-2) + ... + (n-u) entries.
std::uint64_t pair_row_start(std::uint64_t u, std::uint64_t n) {
  return static_cast<std::uint64_t>(static_cast<__uint128_t>(u) * (2 * n - u - 1) / 2);
}

/// Inverse of the row-major pair enumeration: a float estimate of the row
/// followed by exact integer correction, so the decode is platform- and
/// thread-deterministic (the float only picks the starting point).
std::pair<Vertex, Vertex> decode_pair_index(std::uint64_t idx, std::uint64_t n) {
  const double nd = static_cast<double>(n) - 0.5;
  const double disc = std::max(nd * nd - 2.0 * static_cast<double>(idx), 0.0);
  auto u = static_cast<std::uint64_t>(
      std::clamp(nd - std::sqrt(disc), 0.0, static_cast<double>(n - 2)));
  while (u > 0 && pair_row_start(u, n) > idx) --u;
  while (pair_row_start(u + 1, n) <= idx) ++u;
  const std::uint64_t v = u + 1 + (idx - pair_row_start(u, n));
  return {static_cast<Vertex>(u), static_cast<Vertex>(v)};
}

// The gnm stratum plan — the single source of truth shared by gnm_par and
// gnm_stream, so the materialized and streamed paths emit bit-identical
// chunks. Chunk c owns pair indices [range_lo[c], range_lo[c+1]) and
// samples quota[c] of them. Quotas split m proportionally with a forward
// carry for the (near-complete-density) case where a stratum is smaller
// than its proportional share; the plan is a pure function of (n, m,
// chunks), so it never depends on the thread count.
struct GnmPlan {
  std::size_t chunks = 0;
  std::vector<std::uint64_t> range_lo;  // chunks + 1 fenceposts
  std::vector<std::uint64_t> quota;     // per-chunk sample counts, sum == m
};

GnmPlan gnm_plan(std::size_t n, std::size_t m, const ParGenConfig& cfg) {
  KMM_CHECK_MSG(n == 0 || n - 1 <= std::numeric_limits<Vertex>::max(),
                "gnm_par: vertex ids must fit Vertex (32 bits)");
  const __uint128_t total128 =
      n < 2 ? 0 : static_cast<__uint128_t>(n) * (n - 1) / 2;
  KMM_CHECK_MSG(total128 <= static_cast<__uint128_t>(~std::uint64_t{0}),
                "gnm_par: pair index space exceeds 64 bits");
  const auto total = static_cast<std::uint64_t>(total128);
  KMM_CHECK_MSG(m <= total, "G(n,m): too many edges requested");

  GnmPlan plan;
  plan.chunks = gen_chunks(m, cfg.edges_per_chunk);
  plan.range_lo.resize(plan.chunks + 1);
  for (std::size_t c = 0; c <= plan.chunks; ++c) {
    plan.range_lo[c] =
        static_cast<std::uint64_t>(static_cast<__uint128_t>(total) * c / plan.chunks);
  }
  plan.quota.assign(plan.chunks, 0);
  std::uint64_t carry = 0;
  for (std::size_t c = 0; c < plan.chunks; ++c) {
    const std::uint64_t share =
        static_cast<std::uint64_t>(static_cast<__uint128_t>(m) * (c + 1) / plan.chunks) -
        static_cast<std::uint64_t>(static_cast<__uint128_t>(m) * c / plan.chunks);
    const std::uint64_t want = share + carry;
    plan.quota[c] = std::min(want, plan.range_lo[c + 1] - plan.range_lo[c]);
    carry = want - plan.quota[c];
  }
  KMM_CHECK_MSG(carry == 0, "gnm_par: density too close to complete — use gen::gnm");
  return plan;
}

/// Fill chunk c of the plan: exactly quota[c] edges in canonical ascending
/// pair-index order, written to out[0..quota[c]). Deterministic in
/// (n, cfg.seed, plan, c) alone.
void gnm_fill_chunk(std::size_t n, const ParGenConfig& cfg, const GnmPlan& plan,
                    std::size_t c, WeightedEdge* out) {
  Rng rng(split3(cfg.seed, kGnmStreamTag, c));
  const std::uint64_t lo = plan.range_lo[c];
  const std::uint64_t range = plan.range_lo[c + 1] - lo;
  const std::uint64_t need = plan.quota[c];
  if (need == 0) return;
  std::vector<std::uint64_t> picks;
  picks.reserve(need);
  if (range - need <= need) {
    // Dense stratum: selection sampling (Knuth algorithm S) — exactly
    // `need` picks, emitted in ascending order.
    std::uint64_t remaining = range;
    std::uint64_t want = need;
    for (std::uint64_t i = 0; i < range && want > 0; ++i, --remaining) {
      if (rng.next_below(remaining) < want) {
        picks.push_back(lo + i);
        --want;
      }
    }
  } else {
    // Sparse stratum: rejection to `need` distinct indices, then sort to
    // the canonical ascending order.
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(2 * need);
    while (picks.size() < need) {
      const std::uint64_t idx = lo + rng.next_below(range);
      if (seen.insert(idx).second) picks.push_back(idx);
    }
    std::sort(picks.begin(), picks.end());
  }
  for (std::size_t i = 0; i < picks.size(); ++i) {
    const auto [u, v] = decode_pair_index(picks[i], n);
    out[i] = WeightedEdge{u, v, edge_weight(cfg, picks[i])};
  }
}

/// Fill chunk ci of the rmat candidate stream: the quadrant descents and
/// attempt cap of gen::rmat, scoped to the chunk's own PRNG stream. The
/// output may contain duplicates (dedup is the consumer's job); every
/// occurrence of an edge carries the identical canonical-index-keyed weight.
void rmat_fill_chunk(std::size_t n, std::size_t m, const ParGenConfig& cfg, double a,
                     double b, double c, std::uint64_t levels, std::size_t chunks,
                     std::size_t ci, std::vector<WeightedEdge>& out) {
  const std::size_t quota = m * (ci + 1) / chunks - m * ci / chunks;
  Rng rng(split3(cfg.seed, kRmatStreamTag, ci));
  out.clear();
  out.reserve(quota);
  // Same descent and same attempt cap per requested edge as gen::rmat.
  const std::size_t max_attempts = 16 * quota + 64;
  for (std::size_t attempt = 0; attempt < max_attempts && out.size() < quota; ++attempt) {
    std::uint64_t u = 0, v = 0;
    for (std::uint64_t level = 0; level < levels; ++level) {
      const double r = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left: both bits 0
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v || u >= n || v >= n) continue;
    // Weights key off the global edge id, so cross-chunk duplicates carry
    // the same weight and the dedup winner is irrelevant.
    out.push_back(WeightedEdge{static_cast<Vertex>(u), static_cast<Vertex>(v),
                               edge_weight(cfg, edge_index(static_cast<Vertex>(u),
                                                           static_cast<Vertex>(v), n))});
  }
}

void rmat_check_params(std::size_t n, double a, double b, double c) {
  KMM_CHECK(n >= 2);
  KMM_CHECK_MSG(n - 1 <= std::numeric_limits<Vertex>::max(),
                "rmat_par: vertex ids must fit Vertex (32 bits)");
  KMM_CHECK_MSG(a > 0 && b >= 0 && c >= 0 && a + b + c < 1.0,
                "rmat: quadrant probabilities must be positive and sum below 1");
}

}  // namespace

Graph gnm_par(std::size_t n, std::size_t m, const ParGenConfig& cfg, ThreadPool* pool) {
  const GnmPlan plan = gnm_plan(n, m, cfg);
  std::vector<std::size_t> out_off(plan.chunks + 1, 0);
  for (std::size_t c = 0; c < plan.chunks; ++c) out_off[c + 1] = out_off[c] + plan.quota[c];
  std::vector<WeightedEdge> edges(m);

  std::optional<ThreadPool> owned;
  if (pool == nullptr) pool = &owned.emplace(resolve_gen_threads(cfg.threads));
  pool->parallel_for(plan.chunks, [&](std::size_t c) {
    gnm_fill_chunk(n, cfg, plan, c, edges.data() + out_off[c]);
  });
  // Strata are disjoint and ascending, so the assembled list is already in
  // canonical (u, v) order — the parallel CSR ctor skips its sort pass.
  return Graph(n, std::move(edges), pool);
}

void gnm_stream(std::size_t n, std::size_t m, const ParGenConfig& cfg,
                const EdgeChunkSink& sink, ThreadPool* pool) {
  const GnmPlan plan = gnm_plan(n, m, cfg);
  std::optional<ThreadPool> owned;
  if (pool == nullptr) pool = &owned.emplace(resolve_gen_threads(cfg.threads));
  // Lane-private scratch, recycled across the lane's chunks — the stream
  // never holds more than one chunk per lane in memory (contract rule 3).
  std::vector<std::vector<WeightedEdge>> scratch(pool->size());
  pool->parallel_for(plan.chunks, [&](std::size_t c) {
    auto& buf = scratch[ThreadPool::current_lane()];
    buf.resize(plan.quota[c]);
    gnm_fill_chunk(n, cfg, plan, c, buf.data());
    sink(c, std::span<const WeightedEdge>(buf.data(), buf.size()));
  });
}

Graph rmat_par(std::size_t n, std::size_t m, const ParGenConfig& cfg, double a, double b,
               double c, ThreadPool* pool) {
  rmat_check_params(n, a, b, c);
  const std::uint64_t levels = bits_for(n);
  const std::size_t chunks = gen_chunks(m, cfg.edges_per_chunk);
  std::vector<std::vector<WeightedEdge>> candidates(chunks);

  std::optional<ThreadPool> owned;
  if (pool == nullptr) pool = &owned.emplace(resolve_gen_threads(cfg.threads));
  pool->parallel_for(chunks, [&](std::size_t ci) {
    rmat_fill_chunk(n, m, cfg, a, b, c, levels, chunks, ci, candidates[ci]);
  });
  // Deterministic assembly: dedup in fixed chunk order (first occurrence
  // wins), independent of which threads ran which chunks.
  GraphBuilder builder(n);
  for (const auto& chunk : candidates) {
    for (const auto& e : chunk) builder.add_edge(e.u, e.v, e.w);
  }
  return builder.build(pool);
}

void rmat_stream(std::size_t n, std::size_t m, const ParGenConfig& cfg,
                 const EdgeChunkSink& sink, double a, double b, double c,
                 ThreadPool* pool) {
  rmat_check_params(n, a, b, c);
  const std::uint64_t levels = bits_for(n);
  const std::size_t chunks = gen_chunks(m, cfg.edges_per_chunk);
  std::optional<ThreadPool> owned;
  if (pool == nullptr) pool = &owned.emplace(resolve_gen_threads(cfg.threads));
  std::vector<std::vector<WeightedEdge>> scratch(pool->size());
  pool->parallel_for(chunks, [&](std::size_t ci) {
    auto& buf = scratch[ThreadPool::current_lane()];
    rmat_fill_chunk(n, m, cfg, a, b, c, levels, chunks, ci, buf);
    sink(ci, std::span<const WeightedEdge>(buf.data(), buf.size()));
  });
}

EdgeStream gnm_stream_source(std::size_t n, std::size_t m, ParGenConfig cfg,
                             ThreadPool* pool) {
  return [n, m, cfg, pool](const EdgeChunkSink& sink) {
    gnm_stream(n, m, cfg, sink, pool);
  };
}

EdgeStream rmat_stream_source(std::size_t n, std::size_t m, ParGenConfig cfg, double a,
                              double b, double c, ThreadPool* pool) {
  return [n, m, cfg, a, b, c, pool](const EdgeChunkSink& sink) {
    rmat_stream(n, m, cfg, sink, a, b, c, pool);
  };
}

EdgeStream edge_list_stream(const std::vector<WeightedEdge>& edges,
                            std::size_t edges_per_chunk) {
  const std::size_t per = std::max<std::size_t>(edges_per_chunk, 1);
  return [&edges, per](const EdgeChunkSink& sink) {
    const std::size_t chunks = edges.empty() ? 0 : (edges.size() + per - 1) / per;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = c * per;
      const std::size_t hi = std::min(lo + per, edges.size());
      sink(c, std::span<const WeightedEdge>(edges.data() + lo, hi - lo));
    }
  };
}

}  // namespace kmm::gen
