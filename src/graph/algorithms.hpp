#pragma once
// Sequential reference algorithms.
//
// These are the ground truth the distributed algorithms are validated
// against in tests and benches: BFS components, Kruskal/Prim MST, exact
// min-cut (Stoer–Wagner), bipartiteness, cycle queries, BFS distances.

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace kmm::ref {

/// Component labels: labels[v] is the smallest vertex id in v's component
/// (a canonical labeling, directly comparable across algorithms).
[[nodiscard]] std::vector<Vertex> component_labels(const Graph& g);

/// Number of connected components.
[[nodiscard]] std::size_t component_count(const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

[[nodiscard]] bool same_component(const Graph& g, Vertex s, Vertex t);

/// Kruskal. Returns the edges of a minimum spanning forest (sorted by
/// (u, v)); ties broken by edge id so the result is deterministic.
[[nodiscard]] std::vector<WeightedEdge> minimum_spanning_forest(const Graph& g);

/// Total weight of the minimum spanning forest.
[[nodiscard]] Weight msf_weight(const Graph& g);

/// Prim from vertex 0 (for cross-checking Kruskal on connected graphs).
[[nodiscard]] Weight prim_mst_weight(const Graph& g);

/// Two-coloring if bipartite.
[[nodiscard]] bool is_bipartite(const Graph& g);

/// True iff the graph contains at least one cycle.
[[nodiscard]] bool has_cycle(const Graph& g);

/// True iff edge {u, v} (must exist) lies on some cycle, i.e. u and v stay
/// connected after removing it.
[[nodiscard]] bool edge_on_cycle(const Graph& g, Vertex u, Vertex v);

/// Exact global min-cut value by Stoer–Wagner (unweighted edges count 1,
/// weights are honored otherwise). Requires a connected graph with >= 2
/// vertices; returns 0 for disconnected inputs.
[[nodiscard]] std::uint64_t stoer_wagner_min_cut(const Graph& g);

/// BFS distances from `s` (hop counts); unreachable = SIZE_MAX.
[[nodiscard]] std::vector<std::size_t> bfs_distances(const Graph& g, Vertex s);

/// Eccentricity-based diameter estimate: max BFS distance from `probes`
/// pseudo-random start vertices (exact when probes >= n).
[[nodiscard]] std::size_t diameter_lower_bound(const Graph& g, std::size_t probes = 4);

/// Checks that `edges` forms a spanning forest of g: acyclic, every edge in
/// g, and connecting exactly the components of g.
[[nodiscard]] bool is_spanning_forest(const Graph& g,
                                      const std::vector<std::pair<Vertex, Vertex>>& edges);

/// All bridges of g (edges whose removal increases the component count),
/// canonical (u < v), sorted. Iterative Tarjan lowlink.
[[nodiscard]] std::vector<std::pair<Vertex, Vertex>> bridges(const Graph& g);

/// True iff g is connected and bridgeless (2-edge-connected); requires
/// at least 2 vertices.
[[nodiscard]] bool is_two_edge_connected(const Graph& g);

}  // namespace kmm::ref
