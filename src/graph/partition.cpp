#include "graph/partition.hpp"

#include <string>

#include "util/assert.hpp"

namespace kmm {

VertexPartition VertexPartition::random(std::size_t n, MachineId k, std::uint64_t seed) {
  KMM_CHECK(k >= 1);
  VertexPartition p(n, k);
  p.hashed_ = true;
  p.seed_ = seed;
  return p;
}

VertexPartition VertexPartition::round_robin(std::size_t n, MachineId k) {
  KMM_CHECK(k >= 1);
  VertexPartition p(n, k);
  p.table_.resize(n);
  for (std::size_t v = 0; v < n; ++v) p.table_[v] = static_cast<MachineId>(v % k);
  return p;
}

VertexPartition VertexPartition::skewed(std::size_t n, MachineId k, double fraction) {
  KMM_CHECK(k >= 1 && fraction >= 0.0 && fraction <= 1.0);
  VertexPartition p(n, k);
  p.table_.resize(n);
  const auto pivot = static_cast<std::size_t>(fraction * static_cast<double>(n));
  for (std::size_t v = 0; v < n; ++v) {
    p.table_[v] = v < pivot ? 0 : static_cast<MachineId>(v % k);
  }
  return p;
}

VertexPartition VertexPartition::from_table(std::vector<MachineId> table, MachineId k) {
  KMM_CHECK(k >= 1);
  VertexPartition p(table.size(), k);
  for (const MachineId m : table) KMM_CHECK_MSG(m < k, "partition table entry out of range");
  p.table_ = std::move(table);
  return p;
}

Expected<VertexPartition, BuildError> VertexPartition::make_from_table(
    std::vector<MachineId> table, MachineId k) {
  if (k < 1) {
    return Expected<VertexPartition, BuildError>::err({"a partition needs k >= 1 machines"});
  }
  for (std::size_t v = 0; v < table.size(); ++v) {
    if (table[v] >= k) {
      return Expected<VertexPartition, BuildError>::err(
          {"partition table entry out of range: vertex " + std::to_string(v) +
           " maps to machine " + std::to_string(table[v]) + " with k = " + std::to_string(k)});
    }
  }
  return from_table(std::move(table), k);
}

MachineId VertexPartition::home(Vertex v) const {
  KMM_CHECK(v < n_);
  if (hashed_) return static_cast<MachineId>(split(seed_, v) % k_);
  return table_[v];
}

void VertexPartition::hosted_by(MachineId i, std::vector<Vertex>& out) const {
  out.clear();
  for (Vertex v = 0; v < n_; ++v) {
    if (home(v) == i) out.push_back(v);
  }
}

void VertexPartition::loads(std::vector<std::size_t>& out) const {
  out.assign(k_, 0);
  for (Vertex v = 0; v < n_; ++v) ++out[home(v)];
}

EdgePartition EdgePartition::random(std::size_t /*m*/, MachineId k, std::uint64_t seed) {
  KMM_CHECK(k >= 1);
  return EdgePartition(k, seed);
}

MachineId EdgePartition::home(std::size_t edge_pos) const {
  return static_cast<MachineId>(split(seed_, edge_pos) % k_);
}

void EdgePartition::loads(std::size_t m, std::vector<std::size_t>& out) const {
  out.assign(k_, 0);
  for (std::size_t e = 0; e < m; ++e) ++out[home(e)];
}

}  // namespace kmm
