#pragma once
// Vertex- and edge-partition models of Section 1.1 / 1.3.
//
// * Random vertex partition (RVP): each vertex is hashed to a machine; both
//   the simulator and the algorithms can recompute home(v) locally — exactly
//   the "RVP via hashing" implementation the paper describes.
// * Random edge partition (REP): each edge lands on a uniform machine
//   (Section 1.3; used by the REP-model MST baseline).
// * Explicit partitions (round-robin, adversarial skew) for worst-case and
//   failure-injection tests; these carry a lookup table.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/expected.hpp"
#include "util/random.hpp"

namespace kmm {

using MachineId = std::uint32_t;

/// Assignment of vertices to machines.
class VertexPartition {
 public:
  /// RVP: home(v) = hash(seed, v) mod k. Any party knowing the seed can
  /// evaluate home() without communication.
  static VertexPartition random(std::size_t n, MachineId k, std::uint64_t seed);

  /// Round-robin v -> v mod k (balanced, deterministic, not random).
  static VertexPartition round_robin(std::size_t n, MachineId k);

  /// Adversarial skew: the first `fraction`·n vertices all on machine 0,
  /// remainder round-robin. For failure-injection tests.
  static VertexPartition skewed(std::size_t n, MachineId k, double fraction);

  /// Explicit assignment table (entries must be < k). Used by reductions
  /// that derive a partition from another one, e.g. the bipartite double
  /// cover placing (v,0) and (v,1) on home(v).
  static VertexPartition from_table(std::vector<MachineId> table, MachineId k);

  /// Validating counterpart of from_table for tables of external origin:
  /// out-of-range entries (or k == 0) come back as a BuildError instead of
  /// aborting.
  [[nodiscard]] static Expected<VertexPartition, BuildError> make_from_table(
      std::vector<MachineId> table, MachineId k);

  [[nodiscard]] MachineId home(Vertex v) const;
  [[nodiscard]] MachineId machines() const noexcept { return k_; }
  [[nodiscard]] std::size_t num_vertices() const noexcept { return n_; }

  /// Fills `out` with the vertices hosted by machine i (ascending ids).
  /// The buffer is cleared first and its capacity retained, so repeated
  /// calls on a warm buffer allocate nothing — the setup-path discipline
  /// the parallel input pipeline relies on.
  void hosted_by(MachineId i, std::vector<Vertex>& out) const;

  /// Fills `out` with per-machine vertex counts (for balance assertions);
  /// same caller-provided-buffer contract as hosted_by.
  void loads(std::vector<std::size_t>& out) const;

 private:
  VertexPartition(std::size_t n, MachineId k) : n_(n), k_(k) {}
  std::size_t n_ = 0;
  MachineId k_ = 1;
  bool hashed_ = false;
  std::uint64_t seed_ = 0;
  std::vector<MachineId> table_;  // used when !hashed_
};

/// Assignment of edges to machines (REP model). Edges are identified by
/// their position in Graph::edges().
class EdgePartition {
 public:
  static EdgePartition random(std::size_t m, MachineId k, std::uint64_t seed);

  [[nodiscard]] MachineId home(std::size_t edge_pos) const;
  [[nodiscard]] MachineId machines() const noexcept { return k_; }
  /// Per-machine edge counts for the first `m` edges; caller-provided
  /// buffer, mirroring VertexPartition::loads.
  void loads(std::size_t m, std::vector<std::size_t>& out) const;

 private:
  EdgePartition(MachineId k, std::uint64_t seed) : k_(k), seed_(seed) {}
  MachineId k_ = 1;
  std::uint64_t seed_ = 0;
};

}  // namespace kmm
