#include "serve/query_journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>

#include "util/crc64.hpp"

namespace kmm {
namespace {

constexpr char kCrcMarker[] = " crc=";

std::string crc_suffix(const std::string& body) {
  char hex[32];
  std::snprintf(hex, sizeof hex, "%s%016" PRIx64, kCrcMarker,
                crc64(body.data(), body.size()));
  return hex;
}

/// Split "body crc=<16 hex>" and verify; returns false on any mismatch.
bool check_line(const std::string& line, std::string& body) {
  const std::size_t marker = line.rfind(kCrcMarker);
  if (marker == std::string::npos) return false;
  const std::string hex = line.substr(marker + sizeof(kCrcMarker) - 1);
  if (hex.size() != 16) return false;
  std::uint64_t want = 0;
  for (const char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    want = (want << 4) | static_cast<std::uint64_t>(digit);
  }
  body = line.substr(0, marker);
  return crc64(body.data(), body.size()) == want;
}

/// Whitespace-token cursor over a verified record body.
class TokenReader {
 public:
  explicit TokenReader(const std::string& body) : body_(&body) {}

  [[nodiscard]] bool u64(std::uint64_t& out) {
    while (pos_ < body_->size() && (*body_)[pos_] == ' ') ++pos_;
    if (pos_ >= body_->size()) return false;
    std::uint64_t value = 0;
    bool any = false;
    while (pos_ < body_->size() && (*body_)[pos_] >= '0' && (*body_)[pos_] <= '9') {
      value = value * 10 + static_cast<std::uint64_t>((*body_)[pos_] - '0');
      ++pos_;
      any = true;
    }
    if (!any || (pos_ < body_->size() && (*body_)[pos_] != ' ')) return false;
    out = value;
    return true;
  }

  [[nodiscard]] bool done() {
    while (pos_ < body_->size() && (*body_)[pos_] == ' ') ++pos_;
    return pos_ == body_->size();
  }

 private:
  const std::string* body_;
  std::size_t pos_ = 0;
};

bool parse_submitted(const std::string& body, std::uint64_t& id, QueryRequest& req) {
  TokenReader r(body);
  std::uint64_t kind = 0, nedges = 0;
  std::uint64_t s = 0, t = 0, x = 0, y = 0;
  if (!r.u64(id) || !r.u64(kind) || !r.u64(req.seed) || !r.u64(req.budget.deadline_ms) ||
      !r.u64(req.budget.max_supersteps) || !r.u64(req.budget.max_ledger_bits) ||
      !r.u64(s) || !r.u64(t) || !r.u64(x) || !r.u64(y) || !r.u64(nedges)) {
    return false;
  }
  if (kind > static_cast<std::uint64_t>(QueryKind::kVerifyBipartite)) return false;
  req.kind = static_cast<QueryKind>(kind);
  req.s = static_cast<Vertex>(s);
  req.t = static_cast<Vertex>(t);
  req.x = static_cast<Vertex>(x);
  req.y = static_cast<Vertex>(y);
  req.edges.clear();
  req.edges.reserve(static_cast<std::size_t>(nedges));
  for (std::uint64_t i = 0; i < nedges; ++i) {
    std::uint64_t u = 0, v = 0;
    if (!r.u64(u) || !r.u64(v)) return false;
    req.edges.emplace_back(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  return r.done();
}

}  // namespace

Expected<std::unique_ptr<QueryJournal>, DurableError> QueryJournal::open(
    const std::string& path, bool fsync) {
  using Result = Expected<std::unique_ptr<QueryJournal>, DurableError>;
  const int fd = ::open(path.c_str(), O_RDWR | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Result::err({DurableErrorCode::kIo,
                        "open failed: " + std::string(std::strerror(errno)), path});
  }
  // Seal a torn tail before appending anything: a SIGKILL mid-append can
  // leave the final line without its newline, and O_APPEND would then weld
  // the next record onto it — corrupting BOTH. One newline isolates the torn
  // bytes into a line replay() rejects by CRC, keeping every later record
  // line-aligned.
  struct stat st;
  if (::fstat(fd, &st) == 0 && st.st_size > 0) {
    char last = '\n';
    if (::pread(fd, &last, 1, st.st_size - 1) == 1 && last != '\n') {
      while (::write(fd, "\n", 1) < 0 && errno == EINTR) {
      }
    }
  }
  return Result(std::unique_ptr<QueryJournal>(new QueryJournal(path, fd, fsync)));
}

QueryJournal::~QueryJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void QueryJournal::append_line(const std::string& body) {
  const std::string line = body + crc_suffix(body) + "\n";
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t off = 0;
  bool ok = true;
  while (off < line.size()) {
    const ssize_t w = ::write(fd_, line.data() + off, line.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    off += static_cast<std::size_t>(w);
  }
  if (ok && fsync_ && ::fsync(fd_) != 0) ok = false;
  if (ok) {
    ++stats_.appended;
  } else {
    ++stats_.append_failures;
    if (!warned_) {
      warned_ = true;
      std::fprintf(stderr, "kmm: query journal append failed on '%s': %s\n", path_.c_str(),
                   std::strerror(errno));
    }
  }
}

void QueryJournal::record_submitted(std::uint64_t id, const QueryRequest& request) {
  std::string body = "S " + std::to_string(id) + " " +
                     std::to_string(static_cast<unsigned>(request.kind)) + " " +
                     std::to_string(request.seed) + " " +
                     std::to_string(request.budget.deadline_ms) + " " +
                     std::to_string(request.budget.max_supersteps) + " " +
                     std::to_string(request.budget.max_ledger_bits) + " " +
                     std::to_string(request.s) + " " + std::to_string(request.t) + " " +
                     std::to_string(request.x) + " " + std::to_string(request.y) + " " +
                     std::to_string(request.edges.size());
  for (const auto& [u, v] : request.edges) {
    body += " " + std::to_string(u) + " " + std::to_string(v);
  }
  append_line(body);
}

void QueryJournal::record_completed(std::uint64_t id, bool ok) {
  append_line("C " + std::to_string(id) + " " + (ok ? std::string("1") : std::string("0")));
}

QueryJournal::Stats QueryJournal::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

Expected<QueryJournal::Replay, DurableError> QueryJournal::replay(const std::string& path) {
  using Result = Expected<Replay, DurableError>;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Result::err({DurableErrorCode::kIo,
                        "open failed: " + std::string(std::strerror(errno)), path});
  }
  std::map<std::uint64_t, QueryRequest> submitted;
  std::set<std::uint64_t> completed;
  Replay replay;
  std::string line;
  int c;
  bool eof = false;
  while (!eof) {
    line.clear();
    while ((c = std::fgetc(f)) != EOF && c != '\n') line.push_back(static_cast<char>(c));
    eof = c == EOF;
    if (line.empty()) continue;  // includes the final newline-terminated EOF pass
    // A line without its newline is the torn tail of a dying append — its
    // CRC check below rejects it unless the kill landed exactly after the
    // full record, in which case it IS complete and counts.
    std::string body;
    if (!check_line(line, body) || body.size() < 2 || body[1] != ' ') {
      ++replay.torn_records;
      continue;
    }
    const char type = body[0];
    const std::string rest = body.substr(2);
    if (type == 'S') {
      std::uint64_t id = 0;
      QueryRequest req;
      if (!parse_submitted(rest, id, req)) {
        ++replay.torn_records;
        continue;
      }
      submitted.emplace(id, std::move(req));  // first submission wins
      replay.max_id = std::max(replay.max_id, id);
    } else if (type == 'C') {
      TokenReader r(rest);
      std::uint64_t id = 0, ok = 0;
      if (!r.u64(id) || !r.u64(ok) || !r.done() || ok > 1) {
        ++replay.torn_records;
        continue;
      }
      completed.insert(id);
      replay.max_id = std::max(replay.max_id, id);
    } else {
      ++replay.torn_records;
    }
  }
  std::fclose(f);
  replay.submitted = submitted.size();
  replay.completed = completed.size();
  for (auto& [id, req] : submitted) {
    if (completed.count(id) == 0) replay.pending.emplace_back(id, std::move(req));
  }
  return Result(std::move(replay));
}

}  // namespace kmm
