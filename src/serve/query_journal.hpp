#pragma once
// Durable query journal for the serving layer: an append-only text log of
// query lifecycle records,
//
//   S <id> <kind> <seed> <budget...> <operands...> <edges...> crc=<16 hex>
//   C <id> <ok> crc=<16 hex>
//
// one line per record, each protected by a CRC-64 of its body. Appends are
// fsync'd, so after a process death the journal's intact prefix tells the
// restarted service exactly which queries were submitted but never
// completed — replay() returns that pending set (idempotent by query id:
// duplicate submissions collapse, completed ids are excluded even when the
// completion record precedes a duplicate submission) and the restarted
// ClusterService re-runs ONLY those. A torn tail line — the record being
// appended at the instant of death — fails its CRC and is counted, never
// misparsed.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "durable/durable_format.hpp"
#include "serve/service.hpp"
#include "util/expected.hpp"

namespace kmm {

class QueryJournal {
 public:
  /// Open (creating if absent) for appending. The journal owns the file
  /// descriptor; records from earlier process lifetimes are preserved.
  [[nodiscard]] static Expected<std::unique_ptr<QueryJournal>, DurableError> open(
      const std::string& path, bool fsync = true);

  ~QueryJournal();
  QueryJournal(const QueryJournal&) = delete;
  QueryJournal& operator=(const QueryJournal&) = delete;

  /// Thread-safe appends (the service calls these from submit paths and
  /// executor threads). Append failures are counted and reported on
  /// stderr once — a journalling failure must not take the service down.
  void record_submitted(std::uint64_t id, const QueryRequest& request);
  void record_completed(std::uint64_t id, bool ok);

  struct Stats {
    std::uint64_t appended = 0;
    std::uint64_t append_failures = 0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  struct Replay {
    /// Submitted-but-never-completed queries, ascending id — what a
    /// restarted service re-runs.
    std::vector<std::pair<std::uint64_t, QueryRequest>> pending;
    std::uint64_t submitted = 0;     // distinct submitted ids
    std::uint64_t completed = 0;     // distinct completed ids
    std::uint64_t torn_records = 0;  // CRC-failed / unparseable lines skipped
    std::uint64_t max_id = 0;        // highest id seen (seed for fresh ids)
  };

  /// Scan a journal file. A missing file is kIo; any intact journal —
  /// including an empty one — replays successfully.
  [[nodiscard]] static Expected<Replay, DurableError> replay(const std::string& path);

 private:
  QueryJournal(std::string path, int fd, bool fsync)
      : path_(std::move(path)), fd_(fd), fsync_(fsync) {}

  void append_line(const std::string& body);

  std::string path_;
  int fd_ = -1;
  bool fsync_ = true;
  mutable std::mutex mutex_;
  Stats stats_;
  bool warned_ = false;
};

}  // namespace kmm
