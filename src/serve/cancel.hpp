#pragma once
// Cooperative cancellation and per-query budgets for the serving layer.
//
// The seam mirrors obs/fault: a nullable CancelPoint* rides RuntimeConfig
// (and every core config that forwards into a Runtime), and Runtime::step
// calls CancelPoint::check() on the driver thread at the top of every
// superstep — before fault processing, before any handler runs. A tripped
// check throws QueryCancelled; stack unwinding through the engine releases
// all pooled arenas, registries and sketch state (they are RAII members of
// stack-local engines), so a cancelled query is gone within one superstep
// and the process keeps serving. Nothing in this header ever aborts.
//
// Budget semantics (0 = unlimited for every field):
//   * deadline_ms      — wall-clock, armed at CancelPoint construction (or
//                        overridden with an absolute instant so one deadline
//                        spans a query's retries). Wall time decides WHEN a
//                        query dies, never what any surviving run computes:
//                        the ledger of a completed query is untouched.
//   * max_supersteps   — runtime steps driven for this query, counted across
//                        every Runtime the query builds (mincut's inner
//                        connectivity runs, two-edge's phases, ...). Purely
//                        structural, so budget kills are deterministic.
//   * max_ledger_bits  — cross-machine wire bits charged to the query's
//                        cluster since the first check (the Sanders/Schimek
//                        exchange-dominated-cost lens: bound the traffic,
//                        not the time).
//
// One CancelPoint serves exactly one query attempt end to end; it is not
// thread-safe and lives on the executing thread. The CancelToken it watches
// IS thread-safe — any thread may cancel() it at any time, and the query
// unwinds at its next superstep boundary.

#include <atomic>
#include <cstdint>

#include "cluster/cluster.hpp"

namespace kmm {

/// Structured reasons a query returns without a result. Every value maps to
/// a QueryError the service hands back — never an abort.
enum class QueryErrorCode : std::uint8_t {
  kCancelled,         // CancelToken fired (client hung up / shed load)
  kDeadlineExceeded,  // QueryBudget::deadline_ms elapsed
  kSuperstepLimit,    // QueryBudget::max_supersteps reached
  kLedgerBudget,      // QueryBudget::max_ledger_bits exceeded
  kOverloaded,        // admission controller rejected the query
  kCrashed,           // injected crashes killed every retry attempt
  kInvalidArgument,   // request references vertices/edges outside the graph
};

[[nodiscard]] const char* query_error_name(QueryErrorCode code) noexcept;

/// Thread-safe cancellation flag shared between a query's client and its
/// executor. cancel() may be called from any thread, any number of times.
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

struct QueryBudget {
  std::uint64_t deadline_ms = 0;      // wall-clock deadline; 0 = none
  std::uint64_t max_supersteps = 0;   // runtime steps (incl. free); 0 = unlimited
  std::uint64_t max_ledger_bits = 0;  // cross-machine wire bits; 0 = unlimited
};

/// Thrown by CancelPoint::check at a superstep boundary; caught by the
/// serving layer (or any caller that armed a CancelPoint directly) and
/// converted into a structured QueryError. `superstep` is the query-global
/// step ordinal at which the run unwound.
struct QueryCancelled {
  QueryErrorCode code = QueryErrorCode::kCancelled;
  std::uint64_t superstep = 0;
};

/// The per-query check the runtime consults at every superstep boundary.
/// Borrowed by RuntimeConfig::cancel exactly like the obs sinks; null never
/// cancels and costs one branch per step.
class CancelPoint {
 public:
  explicit CancelPoint(const CancelToken* token = nullptr, QueryBudget budget = {});

  /// Replace the deadline with an absolute steady-clock instant (ns). The
  /// service uses this so ONE deadline spans all retry attempts of a query
  /// instead of rearming per attempt. 0 disarms the deadline.
  void set_deadline_ns(std::uint64_t abs_ns) noexcept { deadline_ns_ = abs_ns; }
  [[nodiscard]] std::uint64_t deadline_ns() const noexcept { return deadline_ns_; }

  /// Deterministic test/bench trigger: behave as if the token fired at the
  /// start of superstep `step` — no wall clock involved, so cancellation
  /// tests replay bit-identically.
  void cancel_at_superstep(std::uint64_t step) noexcept { cancel_at_ = step; }

  /// Called by Runtime::step on the driver thread before anything else.
  /// Throws QueryCancelled when the token fired or a budget is exhausted;
  /// otherwise counts the step and returns.
  void check(const Cluster& cluster);

  /// Steps this query has driven so far (across all its Runtimes).
  [[nodiscard]] std::uint64_t supersteps() const noexcept { return steps_; }

 private:
  const CancelToken* token_;  // borrowed; may be null
  QueryBudget budget_;
  std::uint64_t deadline_ns_ = 0;  // absolute steady-clock ns; 0 = none
  std::uint64_t cancel_at_ = ~std::uint64_t{0};
  std::uint64_t steps_ = 0;
  std::uint64_t bits0_ = 0;  // ledger baseline, captured at the first check
  bool baselined_ = false;
};

}  // namespace kmm
