#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "core/connectivity.hpp"
#include "core/flooding.hpp"
#include "core/leader_election.hpp"
#include "core/mincut.hpp"
#include "core/mst.hpp"
#include "core/referee.hpp"
#include "core/two_edge.hpp"
#include "core/verification.hpp"
#include "fault/fault_plane.hpp"
#include "runtime/runtime.hpp"
#include "serve/query_journal.hpp"
#include "util/assert.hpp"

namespace kmm {

namespace {

inline std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Kinds whose reductions build derived graphs (or sample edges) through
/// DistributedGraph::graph() — unanswerable on a shard-direct backend, where
/// no machine ever held the global edge list.
bool needs_materialized(QueryKind kind) noexcept {
  switch (kind) {
    case QueryKind::kConnectivity:
    case QueryKind::kMst:
    case QueryKind::kFlooding:
    case QueryKind::kRefereeConnectivity:
    case QueryKind::kLeaderElection:
      return false;
    default:
      return true;
  }
}

bool chaos_armed(const ServiceChaos& chaos) noexcept {
  return chaos.kill_prob > 0.0 || chaos.profile.drop_prob > 0.0 ||
         chaos.profile.dup_prob > 0.0 || chaos.profile.reorder_prob > 0.0 ||
         chaos.profile.corrupt_prob > 0.0;
}

}  // namespace

const char* query_kind_name(QueryKind kind) noexcept {
  switch (kind) {
    case QueryKind::kConnectivity: return "connectivity";
    case QueryKind::kMst: return "mst";
    case QueryKind::kMinCut: return "mincut";
    case QueryKind::kTwoEdge: return "two_edge";
    case QueryKind::kFlooding: return "flooding";
    case QueryKind::kRefereeConnectivity: return "referee";
    case QueryKind::kLeaderElection: return "leader";
    case QueryKind::kVerifySpanningSubgraph: return "verify_spanning_subgraph";
    case QueryKind::kVerifyCut: return "verify_cut";
    case QueryKind::kVerifyStConnectivity: return "verify_st_connectivity";
    case QueryKind::kVerifyEdgeOnAllPaths: return "verify_edge_on_all_paths";
    case QueryKind::kVerifyStCut: return "verify_st_cut";
    case QueryKind::kVerifyCycle: return "verify_cycle";
    case QueryKind::kVerifyECycle: return "verify_e_cycle";
    case QueryKind::kVerifyBipartite: return "verify_bipartite";
  }
  return "unknown";
}

std::size_t estimate_query_bytes(std::size_t n, MachineId k) noexcept {
  // O(n) label/part/sketch words spread over the cluster plus per-machine
  // inbox/outbox/arena overhead. Coarse by design (see header).
  return n * 48 + static_cast<std::size_t>(k) * 8192;
}

ClusterService::ClusterService(const DistributedGraph& dg, ServiceConfig config)
    : dg_(&dg), config_(config) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.first_query_id != 0) next_id_ = config_.first_query_id;
  const unsigned qt = resolve_threads(config_.query_threads, config_.k);
  if (qt > 1) pool_ = std::make_unique<ThreadPool>(qt);
  executors_.reserve(config_.workers);
  for (unsigned w = 0; w < config_.workers; ++w) {
    executors_.emplace_back([this] { worker_loop(); });
  }
}

ClusterService::~ClusterService() {
  std::deque<Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    orphans.swap(queue_);
  }
  work_cv_.notify_all();
  for (Pending& job : orphans) {
    job.ticket->resolve(QueryOutcome::err(
        QueryError{QueryErrorCode::kCancelled, "service shut down before execution", 0, 0}));
  }
  for (auto& t : executors_) t.join();
}

std::shared_ptr<QueryTicket> ClusterService::submit(QueryRequest request,
                                                    std::uint64_t resubmit_id) {
  std::shared_ptr<QueryTicket> ticket;
  bool rejected = false;
  std::string reason;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t id;
    if (resubmit_id != 0) {
      id = resubmit_id;
      next_id_ = std::max(next_id_, resubmit_id + 1);
    } else {
      id = next_id_++;
    }
    ticket = std::shared_ptr<QueryTicket>(new QueryTicket(id));
    ++stats_.submitted;
    const std::size_t live = inflight_ + queue_.size();
    if (queue_.size() >= config_.max_queue) {
      rejected = true;
      reason = "admission: queue full";
    } else if (config_.budget.bytes_per_machine != 0) {
      const std::size_t per_machine =
          estimate_query_bytes(dg_->num_vertices(), config_.k) / config_.k;
      if ((live + 1) * per_machine > config_.budget.bytes_per_machine) {
        rejected = true;
        reason = "admission: memory budget exhausted";
      }
    }
    if (rejected) {
      ++stats_.rejected_overload;
    } else {
      ++stats_.admitted;
      // Journal AFTER admission, BEFORE execution: a process death between
      // this append and the completion record leaves the query pending,
      // which is exactly what replay() re-runs. Resubmissions already have
      // an S record from the first lifetime (replay dedups by id anyway).
      if (config_.journal != nullptr && resubmit_id == 0) {
        config_.journal->record_submitted(ticket->id(), request);
      }
      queue_.push_back(Pending{ticket->id(), std::move(request), ticket});
    }
  }
  if (rejected) {
    ticket->resolve(QueryOutcome::err(
        QueryError{QueryErrorCode::kOverloaded, std::move(reason), 0, 0}));
  } else {
    work_cv_.notify_one();
  }
  return ticket;
}

void ClusterService::worker_loop() {
  for (;;) {
    Pending job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_, nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
      ++inflight_;
    }
    QueryOutcome outcome = execute(job.request, job.id, &job.ticket->token_);
    finish(job, std::move(outcome), nullptr);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --inflight_;
    }
    drain_cv_.notify_all();
  }
}

void ClusterService::finish(const Pending& job, QueryOutcome outcome,
                            std::unique_ptr<MetricsTimeline> timeline) {
  QueryLogEntry entry;
  entry.id = job.id;
  entry.kind = job.request.kind;
  if (outcome.ok()) {
    const QueryResult& r = outcome.value();
    entry.ok = true;
    entry.value = r.value;
    entry.verdict = r.verdict;
    entry.attempts = r.attempts;
    entry.supersteps = r.supersteps;
    entry.rounds = r.ledger.rounds;
    entry.bits = r.ledger.total_bits;
    entry.wall_us = r.wall_us;
    entry.backoff_us = r.backoff_us;
  } else {
    const QueryError& e = outcome.error();
    entry.error = e.code;
    entry.attempts = e.attempts;
    entry.supersteps = e.superstep;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (entry.ok) {
      ++stats_.completed;
    } else {
      ++stats_.failed;
    }
    log_.push_back(entry);
    if (timeline != nullptr) timelines_.emplace_back(job.id, std::move(timeline));
  }
  // Completion record BEFORE the ticket resolves: once a client observes
  // the outcome, a restart will not re-run the query.
  if (config_.journal != nullptr) config_.journal->record_completed(job.id, entry.ok);
  job.ticket->resolve(std::move(outcome));
}

QueryOutcome ClusterService::run_query(const QueryRequest& request, const CancelToken* token) {
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
    ++stats_.submitted;
    ++stats_.admitted;
  }
  if (config_.journal != nullptr) config_.journal->record_submitted(id, request);
  QueryOutcome outcome = execute(request, id, token);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (outcome.ok()) {
      ++stats_.completed;
    } else {
      ++stats_.failed;
    }
  }
  if (config_.journal != nullptr) config_.journal->record_completed(id, outcome.ok());
  return outcome;
}

QueryOutcome ClusterService::execute(const QueryRequest& request, std::uint64_t id,
                                     const CancelToken* token) {
  if (std::optional<QueryError> invalid = validate(request)) {
    return QueryOutcome::err(std::move(*invalid));
  }
  QueryBudget budget = request.budget;  // zero fields inherit the default
  if (budget.deadline_ms == 0) budget.deadline_ms = config_.default_budget.deadline_ms;
  if (budget.max_supersteps == 0) budget.max_supersteps = config_.default_budget.max_supersteps;
  if (budget.max_ledger_bits == 0) {
    budget.max_ledger_bits = config_.default_budget.max_ledger_bits;
  }

  const ClusterConfig cluster_config =
      config_.bandwidth_bits != 0
          ? ClusterConfig{config_.k, config_.bandwidth_bits}
          : ClusterConfig::for_graph(std::max<std::size_t>(dg_->num_vertices(), 2),
                                     config_.k);
  const bool chaos = chaos_armed(config_.chaos);
  const std::uint64_t t0_ns = steady_now_ns();
  std::uint64_t deadline_abs_ns = 0;  // armed by the first attempt's CancelPoint
  std::uint64_t backoff_total_us = 0;

  for (unsigned attempt = 1;; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.attempts;
      if (attempt > 1) ++stats_.retries;
    }
    CancelPoint cancel(token, budget);
    if (deadline_abs_ns != 0) {
      // ONE wall-clock deadline spans all retries — a killed-and-retried
      // query does not get its clock refreshed.
      cancel.set_deadline_ns(deadline_abs_ns);
    } else {
      deadline_abs_ns = cancel.deadline_ns();
    }

    Cluster cluster(cluster_config);  // fresh per attempt: ledger isolation
    std::optional<FaultSchedule> schedule;
    std::optional<FaultPlane> plane;
    if (chaos) {
      schedule.emplace(service_attempt_schedule(config_.chaos.seed, id, attempt,
                                                config_.chaos.kill_prob,
                                                config_.chaos.horizon, config_.k,
                                                config_.chaos.profile));
      if (schedule->has_crashes() || schedule->has_link_faults()) {
        // A silent attempt schedule attaches NO plane at all, so a surviving
        // attempt is bit-identical to an undisturbed run by construction.
        FaultPlaneConfig fault_config;
        fault_config.lethal_crashes = true;
        plane.emplace(*schedule, fault_config);
      }
    }
    std::unique_ptr<MetricsTimeline> timeline;
    ObsSink sink;
    if (config_.record_timelines) {
      timeline = std::make_unique<MetricsTimeline>();
      sink.timeline = timeline.get();
    }

    try {
      QueryResult result = dispatch(request, cluster, cancel,
                                    plane.has_value() ? &*plane : nullptr,
                                    timeline != nullptr ? &sink : nullptr);
      result.ledger = cluster.stats();
      result.supersteps = cancel.supersteps();
      result.attempts = attempt;
      result.backoff_us = backoff_total_us;
      result.wall_us = (steady_now_ns() - t0_ns) / 1000;
      if (timeline != nullptr) {
        std::lock_guard<std::mutex> lock(mutex_);
        timelines_.emplace_back(id, std::move(timeline));
      }
      return QueryOutcome(std::move(result));
    } catch (const QueryCancelled& cancelled) {
      return QueryOutcome::err(QueryError{
          cancelled.code, query_error_name(cancelled.code), cancelled.superstep, attempt});
    } catch (const QueryKilled& killed) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.kills;
      }
      if (attempt >= config_.retry.max_attempts) {
        return QueryOutcome::err(QueryError{QueryErrorCode::kCrashed,
                                            "injected crashes killed every attempt",
                                            killed.superstep, attempt});
      }
      const std::uint64_t backoff_us = retry_backoff_us(config_.retry, id, attempt);
      if (deadline_abs_ns != 0 && steady_now_ns() + backoff_us * 1000 > deadline_abs_ns) {
        // Backing off would outlive the deadline; fail structured now.
        return QueryOutcome::err(QueryError{QueryErrorCode::kDeadlineExceeded,
                                            "deadline would expire during retry backoff",
                                            killed.superstep, attempt});
      }
      backoff_total_us += backoff_us;
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
  }
}

QueryResult ClusterService::dispatch(const QueryRequest& request, Cluster& cluster,
                                     CancelPoint& cancel, FaultPlane* plane,
                                     const ObsSink* obs) {
  QueryResult out;
  out.kind = request.kind;
  BoruvkaConfig base;
  base.seed = request.seed;
  base.threads = config_.query_threads;
  base.obs = obs;
  base.fault = plane;
  base.cancel = &cancel;
  base.pool = pool_.get();
  switch (request.kind) {
    case QueryKind::kConnectivity: {
      const BoruvkaResult res = connected_components(cluster, *dg_, base);
      out.value = res.num_components;
      out.verdict = res.num_components <= 1;
      break;
    }
    case QueryKind::kMst: {
      const BoruvkaResult res =
          minimum_spanning_forest(cluster, *dg_, base, /*require_unique_weights=*/false);
      out.value = res.mst_edges().size();
      out.verdict = res.converged;
      break;
    }
    case QueryKind::kMinCut: {
      MinCutConfig mc;
      mc.seed = request.seed;
      mc.connectivity = base;
      mc.threads = config_.query_threads;
      mc.obs = obs;
      mc.cancel = &cancel;
      mc.pool = pool_.get();
      const MinCutResult res = approximate_min_cut(cluster, *dg_, mc);
      out.value = res.estimate;
      out.verdict = res.graph_connected;
      break;
    }
    case QueryKind::kTwoEdge: {
      const TwoEdgeResult res = two_edge_connectivity(cluster, *dg_, base);
      out.value = res.certificate_edges;
      out.verdict = res.two_edge_connected;
      break;
    }
    case QueryKind::kFlooding: {
      FloodingConfig fc;
      fc.threads = config_.query_threads;
      fc.obs = obs;
      fc.fault = plane;
      fc.cancel = &cancel;
      fc.pool = pool_.get();
      const FloodingResult res = flooding_connectivity(cluster, *dg_, fc);
      out.value = res.num_components;
      out.verdict = res.num_components <= 1;
      break;
    }
    case QueryKind::kRefereeConnectivity: {
      RefereeConfig rc;
      rc.threads = config_.query_threads;
      rc.obs = obs;
      rc.cancel = &cancel;
      rc.pool = pool_.get();
      const RefereeResult res = referee_connectivity(cluster, *dg_, rc);
      out.value = res.num_components;
      out.verdict = res.num_components <= 1;
      break;
    }
    case QueryKind::kLeaderElection: {
      LeaderElectionConfig lc;
      lc.seed = request.seed;
      lc.threads = config_.query_threads;
      lc.obs = obs;
      lc.cancel = &cancel;
      lc.pool = pool_.get();
      const LeaderResult res = elect_leader(cluster, lc);
      out.value = res.leader;
      out.verdict = true;
      break;
    }
    case QueryKind::kVerifySpanningSubgraph: {
      const VerifyResult res =
          verify_spanning_connected_subgraph(cluster, *dg_, request.edges, base);
      out.value = res.components;
      out.verdict = res.ok;
      break;
    }
    case QueryKind::kVerifyCut: {
      const VerifyResult res = verify_cut(cluster, *dg_, request.edges, base);
      out.value = res.components;
      out.verdict = res.ok;
      break;
    }
    case QueryKind::kVerifyStConnectivity: {
      const VerifyResult res =
          verify_st_connectivity(cluster, *dg_, request.s, request.t, base);
      out.value = res.components;
      out.verdict = res.ok;
      break;
    }
    case QueryKind::kVerifyEdgeOnAllPaths: {
      const VerifyResult res = verify_edge_on_all_paths(cluster, *dg_, request.s, request.t,
                                                        request.x, request.y, base);
      out.value = res.components;
      out.verdict = res.ok;
      break;
    }
    case QueryKind::kVerifyStCut: {
      const VerifyResult res =
          verify_st_cut(cluster, *dg_, request.s, request.t, request.edges, base);
      out.value = res.components;
      out.verdict = res.ok;
      break;
    }
    case QueryKind::kVerifyCycle: {
      const VerifyResult res = verify_cycle_containment(cluster, *dg_, base);
      out.value = res.components;
      out.verdict = res.ok;
      break;
    }
    case QueryKind::kVerifyECycle: {
      const VerifyResult res =
          verify_e_cycle_containment(cluster, *dg_, request.x, request.y, base);
      out.value = res.components;
      out.verdict = res.ok;
      break;
    }
    case QueryKind::kVerifyBipartite: {
      const VerifyResult res = verify_bipartiteness(cluster, *dg_, base);
      out.value = res.components;
      out.verdict = res.ok;
      break;
    }
  }
  return out;
}

std::optional<QueryError> ClusterService::validate(const QueryRequest& request) const {
  const std::size_t n = dg_->num_vertices();
  const auto invalid = [](std::string message) {
    return QueryError{QueryErrorCode::kInvalidArgument, std::move(message), 0, 0};
  };
  if (needs_materialized(request.kind) && !dg_->materialized()) {
    return invalid(std::string(query_kind_name(request.kind)) +
                   " requires a materialized graph backend");
  }
  const auto vertex_ok = [n](Vertex v) { return static_cast<std::size_t>(v) < n; };
  switch (request.kind) {
    case QueryKind::kVerifyStConnectivity:
    case QueryKind::kVerifyStCut:
      if (!vertex_ok(request.s) || !vertex_ok(request.t)) {
        return invalid("s/t vertex out of range");
      }
      break;
    case QueryKind::kVerifyEdgeOnAllPaths:
      if (!vertex_ok(request.s) || !vertex_ok(request.t) || !vertex_ok(request.x) ||
          !vertex_ok(request.y)) {
        return invalid("s/t/x/y vertex out of range");
      }
      if (!dg_->graph().has_edge(request.x, request.y)) {
        return invalid("edge (x, y) not present in G");
      }
      break;
    case QueryKind::kVerifyECycle:
      if (!vertex_ok(request.x) || !vertex_ok(request.y)) {
        return invalid("x/y vertex out of range");
      }
      if (!dg_->graph().has_edge(request.x, request.y)) {
        return invalid("edge (x, y) not present in G");
      }
      break;
    default:
      break;
  }
  switch (request.kind) {
    case QueryKind::kVerifySpanningSubgraph:
    case QueryKind::kVerifyCut:
    case QueryKind::kVerifyStCut:
      for (const auto& [u, v] : request.edges) {
        if (!vertex_ok(u) || !vertex_ok(v)) return invalid("edge endpoint out of range");
        if (request.kind == QueryKind::kVerifySpanningSubgraph &&
            !dg_->graph().has_edge(u, v)) {
          return invalid("subgraph edge not present in G");
        }
      }
      break;
    default:
      break;
  }
  return std::nullopt;
}

void ClusterService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [&] { return queue_.empty() && inflight_ == 0; });
}

ServiceStats ClusterService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<QueryLogEntry> ClusterService::log() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return log_;
}

const MetricsTimeline* ClusterService::timeline(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [tid, tl] : timelines_) {
    if (tid == id) return tl.get();
  }
  return nullptr;
}

bool ClusterService::write_query_log_json(const std::string& path) const {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  const std::vector<QueryLogEntry> entries = log();
  const ServiceStats s = stats();
  std::fprintf(out, "{\n  \"queries\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const QueryLogEntry& e = entries[i];
    std::fprintf(out,
                 "    {\"id\": %llu, \"kind\": \"%s\", \"ok\": %s, \"error\": \"%s\", "
                 "\"value\": %llu, \"verdict\": %s, \"attempts\": %u, "
                 "\"supersteps\": %llu, \"rounds\": %llu, \"bits\": %llu, "
                 "\"wall_us\": %llu, \"backoff_us\": %llu}%s\n",
                 static_cast<unsigned long long>(e.id), query_kind_name(e.kind),
                 e.ok ? "true" : "false", e.ok ? "" : query_error_name(e.error),
                 static_cast<unsigned long long>(e.value), e.verdict ? "true" : "false",
                 e.attempts, static_cast<unsigned long long>(e.supersteps),
                 static_cast<unsigned long long>(e.rounds),
                 static_cast<unsigned long long>(e.bits),
                 static_cast<unsigned long long>(e.wall_us),
                 static_cast<unsigned long long>(e.backoff_us),
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"stats\": {\"submitted\": %llu, \"admitted\": %llu, "
               "\"rejected_overload\": %llu, \"completed\": %llu, \"failed\": %llu, "
               "\"attempts\": %llu, \"kills\": %llu, \"retries\": %llu}\n}\n",
               static_cast<unsigned long long>(s.submitted),
               static_cast<unsigned long long>(s.admitted),
               static_cast<unsigned long long>(s.rejected_overload),
               static_cast<unsigned long long>(s.completed),
               static_cast<unsigned long long>(s.failed),
               static_cast<unsigned long long>(s.attempts),
               static_cast<unsigned long long>(s.kills),
               static_cast<unsigned long long>(s.retries));
  std::fclose(out);
  return true;
}

}  // namespace kmm
