#pragma once
// Seeded retry/backoff policy for the serving layer.
//
// Backoff delays follow "decorrelated jitter" (each delay is drawn uniformly
// from [base, 3 * previous], capped), but the draw is a pure function of
// (policy seed, query id, attempt) through the library's splitmix64 PRF —
// wall-clock never enters the DECISION, only the sleep that executes it. Two
// runs of the same service over the same chaos schedule therefore retry the
// same queries after the same (nominal) delays, which is what keeps the
// retry plane inside the repo's determinism story: the sequence of attempts,
// their fault schedules, and the surviving attempt's ledger are all replay-
// identical; only the wall time spent sleeping varies.

#include <cstdint>

#include "util/random.hpp"

namespace kmm {

struct RetryPolicy {
  /// Attempts per query including the first (1 = never retry). Retries fire
  /// only for attempts killed by injected crashes (QueryKilled); structured
  /// cancellations/deadline hits are final.
  unsigned max_attempts = 3;
  /// First retry's nominal delay; also the lower bound of every draw.
  std::uint64_t base_backoff_us = 200;
  /// Cap applied to every drawn delay.
  std::uint64_t max_backoff_us = 20'000;
  /// PRF seed for the jitter draws.
  std::uint64_t seed = 0x5e77ee;
};

/// Nominal delay before re-running `query_id` after its `attempt`-th attempt
/// died (attempt counts from 1). Deterministic: iterates the decorrelated-
/// jitter recurrence from the base using only PRF draws keyed by
/// (seed, query_id, attempt index).
[[nodiscard]] inline std::uint64_t retry_backoff_us(const RetryPolicy& policy,
                                                    std::uint64_t query_id,
                                                    unsigned attempt) {
  const std::uint64_t base = policy.base_backoff_us;
  const std::uint64_t cap = policy.max_backoff_us > base ? policy.max_backoff_us : base;
  std::uint64_t delay = base;
  for (unsigned a = 1; a <= attempt; ++a) {
    const std::uint64_t hi = delay * 3 < cap ? delay * 3 : cap;
    const std::uint64_t span = hi > base ? hi - base : 0;
    const std::uint64_t draw = split3(policy.seed, query_id, a);
    delay = base + (span != 0 ? draw % (span + 1) : 0);
  }
  return delay;
}

}  // namespace kmm
