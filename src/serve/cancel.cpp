#include "serve/cancel.hpp"

#include <chrono>

namespace kmm {

namespace {
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

const char* query_error_name(QueryErrorCode code) noexcept {
  switch (code) {
    case QueryErrorCode::kCancelled: return "cancelled";
    case QueryErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case QueryErrorCode::kSuperstepLimit: return "superstep_limit";
    case QueryErrorCode::kLedgerBudget: return "ledger_budget";
    case QueryErrorCode::kOverloaded: return "overloaded";
    case QueryErrorCode::kCrashed: return "crashed";
    case QueryErrorCode::kInvalidArgument: return "invalid_argument";
  }
  return "unknown";
}

CancelPoint::CancelPoint(const CancelToken* token, QueryBudget budget)
    : token_(token), budget_(budget) {
  if (budget_.deadline_ms != 0) {
    deadline_ns_ = now_ns() + budget_.deadline_ms * 1'000'000ull;
  }
}

void CancelPoint::check(const Cluster& cluster) {
  if (!baselined_) {
    bits0_ = cluster.stats().total_bits;
    baselined_ = true;
  }
  // Deterministic triggers first, wall clock last: a test arming
  // cancel_at_superstep or a superstep/ledger budget sees the same kill
  // point on every machine and thread count.
  if (steps_ >= cancel_at_) {
    throw QueryCancelled{QueryErrorCode::kCancelled, steps_};
  }
  if (token_ != nullptr && token_->cancelled()) {
    throw QueryCancelled{QueryErrorCode::kCancelled, steps_};
  }
  if (budget_.max_supersteps != 0 && steps_ >= budget_.max_supersteps) {
    throw QueryCancelled{QueryErrorCode::kSuperstepLimit, steps_};
  }
  if (budget_.max_ledger_bits != 0 &&
      cluster.stats().total_bits - bits0_ > budget_.max_ledger_bits) {
    throw QueryCancelled{QueryErrorCode::kLedgerBudget, steps_};
  }
  if (deadline_ns_ != 0 && now_ns() > deadline_ns_) {
    throw QueryCancelled{QueryErrorCode::kDeadlineExceeded, steps_};
  }
  ++steps_;
}

}  // namespace kmm
