#pragma once
// ClusterService — the resilient query-serving layer over a long-lived
// distributed graph.
//
// One DistributedGraph is loaded (materialized or stream-ingested) ONCE and
// then serves many concurrent queries — connectivity, MST, approximate
// min-cut, 2-edge-connectivity, the baselines, and the eight verification
// problems — each query running on its own fresh Cluster (per-query ledger
// isolation) while all queries' Runtimes multiplex onto one shared
// ThreadPool (superstep-granularity time-slicing; see thread_pool.hpp).
//
// Robustness contract: a query NEVER aborts the service. Every submission
// resolves to a structured Expected<QueryResult, QueryError>:
//   * deadlines / budgets / client cancellation unwind cooperatively at the
//     next superstep boundary (CancelPoint, porting recipe rule 9);
//   * the admission controller rejects work that would exceed the in-flight
//     bound, the queue bound, or the MachineMemoryBudget (kOverloaded)
//     instead of accepting-then-thrashing;
//   * chaos mode arms a lethal FaultPlane against live attempts: an
//     injected crash kills the whole attempt (QueryKilled), and the seeded
//     retry policy (serve/retry.hpp) re-runs it on a fresh Cluster — with
//     kill decisions one PRF draw per (query, attempt), retries converge
//     geometrically and a surviving attempt's ledger is bit-identical to an
//     undisturbed run;
//   * malformed requests (vertices/edges outside the graph, verifier kinds
//     on a shard-direct backend that never materialized the global graph)
//     return kInvalidArgument up front.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/distributed_graph.hpp"
#include "cluster/stream_ingest.hpp"
#include "fault/fault_schedule.hpp"
#include "obs/metrics_timeline.hpp"
#include "serve/cancel.hpp"
#include "serve/retry.hpp"
#include "util/expected.hpp"

namespace kmm {

class FaultPlane;
class QueryJournal;

/// Every problem the service can answer. The four headliners, the three
/// baselines, and the eight Theorem 4 verification reductions.
enum class QueryKind : std::uint8_t {
  kConnectivity,
  kMst,
  kMinCut,
  kTwoEdge,
  kFlooding,
  kRefereeConnectivity,
  kLeaderElection,
  kVerifySpanningSubgraph,
  kVerifyCut,
  kVerifyStConnectivity,
  kVerifyEdgeOnAllPaths,
  kVerifyStCut,
  kVerifyCycle,
  kVerifyECycle,
  kVerifyBipartite,
};

[[nodiscard]] const char* query_kind_name(QueryKind kind) noexcept;

struct QueryRequest {
  QueryKind kind = QueryKind::kConnectivity;
  std::uint64_t seed = 1;
  /// Per-query budget; any zero field inherits the service default.
  QueryBudget budget;
  /// Vertex operands: s/t for st-connectivity & st-cut, (s,t,x,y) for
  /// edge-on-all-paths, (x,y) for e-cycle containment.
  Vertex s = 0, t = 0, x = 0, y = 0;
  /// Edge-set operand for the subgraph/cut verifiers.
  std::vector<std::pair<Vertex, Vertex>> edges;
};

struct QueryResult {
  QueryKind kind = QueryKind::kConnectivity;
  /// Kind-dependent scalar: component count (connectivity/flooding/referee),
  /// MST edge count, min-cut estimate λ̂, certificate size (2-ECC), elected
  /// leader, or the derived graph's component count (verifiers).
  std::uint64_t value = 0;
  /// Kind-dependent verdict: "connected" for the connectivity family, the
  /// verifier's answer, 2-edge-connectivity, mincut's graph_connected.
  bool verdict = false;
  /// The full ledger of this query's private cluster — per-query isolation
  /// means this is exactly the cost of THIS query, nothing else's.
  ClusterStats ledger;
  std::uint64_t supersteps = 0;  // runtime steps driven (across all phases)
  unsigned attempts = 1;         // 1 = no chaos kill hit this query
  std::uint64_t backoff_us = 0;  // total nominal retry backoff injected
  std::uint64_t wall_us = 0;     // execution wall time (excl. queue wait)
};

struct QueryError {
  QueryErrorCode code = QueryErrorCode::kCancelled;
  std::string message;
  std::uint64_t superstep = 0;  // boundary at which the attempt unwound
  unsigned attempts = 0;        // attempts consumed before giving up
};

using QueryOutcome = Expected<QueryResult, QueryError>;

/// Chaos mode: arm a lethal fault plane against every attempt (see
/// service_attempt_schedule). kill_prob is per attempt; `profile`
/// contributes link-fault rates only (its crash_prob is ignored).
struct ServiceChaos {
  double kill_prob = 0.0;
  std::uint64_t seed = 0;
  std::uint64_t horizon = 64;  // kill steps are drawn in [0, horizon)
  FaultProfile profile;
};

struct ServiceConfig {
  /// Cluster shape for every query's private cluster.
  MachineId k = 8;
  std::uint64_t bandwidth_bits = 0;  // 0 = ClusterConfig::for_graph(n, k)
  /// Executor threads == maximum in-flight queries.
  unsigned workers = 2;
  /// Admitted-but-unstarted queries beyond which submissions are shed.
  std::size_t max_queue = 64;
  /// Per-machine byte cap the admission controller budgets in-flight and
  /// queued queries against (0 = unlimited). Reuses the stream-ingest
  /// budget type: the serving layer models each live query's per-machine
  /// footprint coarsely (see estimate_query_bytes) and rejects kOverloaded
  /// rather than thrashing the host.
  MachineMemoryBudget budget;
  /// RuntimeConfig::threads for every query (shared-pool multiplexed).
  unsigned query_threads = 1;
  QueryBudget default_budget;
  RetryPolicy retry;
  ServiceChaos chaos;
  /// Keep a per-query MetricsTimeline of the surviving attempt, retrievable
  /// via timeline(id) until the service is destroyed.
  bool record_timelines = false;
  /// Durable query journal (borrowed, optional). When set, every admitted
  /// query is journalled at submission and again at completion, so a
  /// restarted service can replay the journal and re-run ONLY the queries
  /// that were in flight when the process died (see query_journal.hpp).
  QueryJournal* journal = nullptr;
  /// First id the service assigns — a restarted service seeds this with
  /// replay().max_id + 1 so resubmitted and fresh ids never collide.
  std::uint64_t first_query_id = 1;
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t completed = 0;  // ok outcomes
  std::uint64_t failed = 0;     // structured errors (excl. admission rejects)
  std::uint64_t attempts = 0;   // query attempts started
  std::uint64_t kills = 0;      // attempts killed by injected crashes
  std::uint64_t retries = 0;    // attempts re-run after a kill
};

/// One completed query, in completion order — the service's query log (and
/// the CI artifact's row shape).
struct QueryLogEntry {
  std::uint64_t id = 0;
  QueryKind kind = QueryKind::kConnectivity;
  bool ok = false;
  QueryErrorCode error = QueryErrorCode::kCancelled;  // valid when !ok
  std::uint64_t value = 0;
  bool verdict = false;
  unsigned attempts = 0;
  std::uint64_t supersteps = 0;
  std::uint64_t rounds = 0;
  std::uint64_t bits = 0;
  std::uint64_t wall_us = 0;
  std::uint64_t backoff_us = 0;
};

/// Client handle for one submitted query. cancel() may be called from any
/// thread at any time; the query unwinds at its next superstep boundary and
/// the outcome resolves to kCancelled (or whatever completed first).
class QueryTicket {
 public:
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  void cancel() noexcept { token_.cancel(); }

  [[nodiscard]] bool done() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return outcome_.has_value();
  }
  /// Block until the outcome is available; the reference stays valid for
  /// the ticket's lifetime.
  [[nodiscard]] const QueryOutcome& wait() const {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return outcome_.has_value(); });
    return *outcome_;
  }

 private:
  friend class ClusterService;
  explicit QueryTicket(std::uint64_t id) : id_(id) {}
  void resolve(QueryOutcome outcome) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      outcome_.emplace(std::move(outcome));
    }
    cv_.notify_all();
  }

  std::uint64_t id_;
  CancelToken token_;
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  std::optional<QueryOutcome> outcome_;
};

/// Coarse per-query memory model the admission controller budgets against:
/// label/part state is O(n) words across the cluster plus O(k) per-machine
/// sketch/buffer overhead. Deliberately simple and deterministic — the
/// controller's job is bounded degradation, not byte-accurate accounting.
[[nodiscard]] std::size_t estimate_query_bytes(std::size_t n, MachineId k) noexcept;

class ClusterService {
 public:
  /// Borrows `dg` (and its backing Graph, when materialized) for the
  /// service's lifetime. Spawns `workers` executor threads immediately.
  ClusterService(const DistributedGraph& dg, ServiceConfig config);
  /// Drains nothing: outstanding tickets resolve (kCancelled) before the
  /// executors join, so no waiter is left hanging.
  ~ClusterService();

  ClusterService(const ClusterService&) = delete;
  ClusterService& operator=(const ClusterService&) = delete;

  /// Admission + enqueue. Always returns a ticket; a shed query's ticket is
  /// already resolved to kOverloaded. A non-zero `resubmit_id` re-runs a
  /// journal-replayed query under its ORIGINAL id (idempotent restart:
  /// completion records land on the id the first lifetime journalled).
  [[nodiscard]] std::shared_ptr<QueryTicket> submit(QueryRequest request,
                                                    std::uint64_t resubmit_id = 0);

  /// Synchronous in-caller execution, bypassing the queue and admission —
  /// the determinism-test seam (same execute path, no executor scheduling).
  [[nodiscard]] QueryOutcome run_query(const QueryRequest& request,
                                       const CancelToken* token = nullptr);

  /// Block until every admitted query has completed.
  void drain();

  [[nodiscard]] ServiceStats stats() const;
  /// Completed-query log, completion order. Take a copy under the hood so
  /// callers may read while executors append.
  [[nodiscard]] std::vector<QueryLogEntry> log() const;
  /// The surviving attempt's timeline for query `id` (record_timelines
  /// only; null otherwise / while in flight).
  [[nodiscard]] const MetricsTimeline* timeline(std::uint64_t id) const;

  /// Write the query log as JSON ({"queries": [...], "stats": {...}}) — the
  /// serving-smoke CI artifact. Returns false when the file cannot open.
  [[nodiscard]] bool write_query_log_json(const std::string& path) const;

  [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }
  [[nodiscard]] const DistributedGraph& graph() const noexcept { return *dg_; }

 private:
  struct Pending {
    std::uint64_t id = 0;
    QueryRequest request;
    std::shared_ptr<QueryTicket> ticket;
  };

  void worker_loop();
  [[nodiscard]] QueryOutcome execute(const QueryRequest& request, std::uint64_t id,
                                     const CancelToken* token);
  /// Kind dispatch for one attempt on one fresh cluster. Throws
  /// QueryCancelled (budgets/token) or QueryKilled (lethal chaos plane).
  [[nodiscard]] QueryResult dispatch(const QueryRequest& request, Cluster& cluster,
                                     CancelPoint& cancel, FaultPlane* plane,
                                     const ObsSink* obs);
  /// Request validation; returns an error for anything that would abort.
  [[nodiscard]] std::optional<QueryError> validate(const QueryRequest& request) const;
  void finish(const Pending& job, QueryOutcome outcome,
              std::unique_ptr<MetricsTimeline> timeline);

  const DistributedGraph* dg_;
  ServiceConfig config_;
  std::unique_ptr<ThreadPool> pool_;  // shared by every query's Runtimes

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // executors: queue non-empty or stopping
  std::condition_variable drain_cv_;  // drain(): in-flight + queued == 0
  std::deque<Pending> queue_;
  std::size_t inflight_ = 0;
  std::uint64_t next_id_ = 1;
  bool stopping_ = false;
  ServiceStats stats_;
  std::vector<QueryLogEntry> log_;
  std::vector<std::pair<std::uint64_t, std::unique_ptr<MetricsTimeline>>> timelines_;

  std::vector<std::thread> executors_;
};

}  // namespace kmm
